//! Taxi-like ground-truth demand for the city presets.
//!
//! The paper builds its "real" TOD tensors by scaling taxi trajectories to
//! the full fleet (§V-B). We have no taxi data (see DESIGN.md), so we
//! synthesise demand with the same statistical character:
//!
//! * region populations drive trip magnitudes (gravity backbone),
//! * a per-OD heterogeneity factor breaks the pure gravity structure (so
//!   the Gravity baseline stays competitive but beatable, as in Table VI),
//! * region *roles* (residential / commercial / mixed) shape the temporal
//!   profile: residential -> commercial flows peak in the morning, the
//!   reverse in the evening, mirroring commuter behaviour.

use neural::rng::Rng64;
use roadnet::{OdSet, RegionId, RoadNetwork, TodTensor};

/// Functional role a region plays in the demand model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionRole {
    /// People start their mornings here.
    Residential,
    /// Work/shopping destination.
    Commercial,
    /// No strong temporal bias.
    Mixed,
}

/// Assigns roles round-robin so every city has all three kinds.
pub fn assign_roles(net: &RoadNetwork) -> Vec<RegionRole> {
    (0..net.num_regions())
        .map(|i| match i % 3 {
            0 => RegionRole::Residential,
            1 => RegionRole::Commercial,
            _ => RegionRole::Mixed,
        })
        .collect()
}

/// Populates `net`'s regions with synthetic census populations
/// proportional to their node counts (with deterministic jitter), and
/// returns the populations.
pub fn synthesize_populations(net: &mut RoadNetwork, rng: &mut Rng64) -> Vec<f64> {
    let pops: Vec<f64> = net
        .regions()
        .iter()
        .map(|r| (r.nodes.len() as f64) * 1000.0 * rng.uniform_in(0.6, 1.6))
        .collect();
    for (i, &p) in pops.iter().enumerate() {
        net.set_region_population(RegionId(i), p)
            .expect("region ids are dense");
    }
    pops
}

/// Morning/evening commuter profile over `t` intervals mapped onto one
/// day, depending on origin/destination roles. Normalised to mean 1.
fn time_profile(origin: RegionRole, dest: RegionRole, frac: f64) -> f64 {
    // frac in [0, 1): position within the simulated horizon.
    let bump = |center: f64, width: f64| {
        let d = (frac - center) / width;
        (-0.5 * d * d).exp()
    };
    let base = 0.4;
    match (origin, dest) {
        (RegionRole::Residential, RegionRole::Commercial) => base + 1.8 * bump(0.25, 0.12),
        (RegionRole::Commercial, RegionRole::Residential) => base + 1.8 * bump(0.75, 0.12),
        _ => base + 0.9 * bump(0.5, 0.25),
    }
}

/// Parameters of the city demand synthesiser.
#[derive(Debug, Clone)]
pub struct CityDemandSpec {
    /// Overall demand scale: trips per interval for the busiest OD, before
    /// heterogeneity.
    pub peak_trips_per_interval: f64,
    /// RNG seed for heterogeneity and noise.
    pub seed: u64,
    /// Multiplicative per-cell noise sigma (lognormal-ish), 0 disables.
    pub noise_sigma: f64,
    /// Fraction of OD pairs with (near-)zero demand. Real taxi OD
    /// matrices are sparse and heavy-tailed; a pure gravity surface is
    /// not (and would hand the Gravity baseline the answer).
    pub sparsity: f64,
    /// Sigma of the lognormal per-OD heterogeneity factor.
    pub heterogeneity_sigma: f64,
    /// Sigma of the lognormal per-region trip-rate factors: census
    /// populations measure residents, not trip production/attraction, so
    /// real demand deviates from any census-derived gravity surface at
    /// the region level too.
    pub trip_rate_sigma: f64,
}

impl Default for CityDemandSpec {
    fn default() -> Self {
        Self {
            peak_trips_per_interval: 30.0,
            seed: 42,
            noise_sigma: 0.15,
            sparsity: 0.4,
            heterogeneity_sigma: 1.0,
            trip_rate_sigma: 0.6,
        }
    }
}

/// Synthesises a taxi-like ground-truth TOD tensor for `net` over `ods`.
/// Region populations must already be set (see
/// [`synthesize_populations`]).
pub fn city_groundtruth_tod(
    net: &RoadNetwork,
    ods: &OdSet,
    t: usize,
    spec: &CityDemandSpec,
) -> TodTensor {
    let mut rng = Rng64::new(spec.seed);
    let roles = assign_roles(net);
    // Region-level trip-rate factors (production / attraction): the link
    // between census population and actual trip-making.
    let k = net.num_regions();
    let production: Vec<f64> = (0..k)
        .map(|_| rng.normal_with(0.0, spec.trip_rate_sigma).exp())
        .collect();
    let attraction: Vec<f64> = (0..k)
        .map(|_| rng.normal_with(0.0, spec.trip_rate_sigma).exp())
        .collect();
    // Gravity backbone: base_i = p_o * p_d / d^2, normalised to
    // peak_trips, times region trip rates and a per-OD heterogeneity
    // factor.
    let mut base = Vec::with_capacity(ods.len());
    let mut max_base: f64 = 0.0;
    for (_, pair) in ods.iter() {
        let ro = net.region(pair.origin).expect("validated");
        let rd = net.region(pair.destination).expect("validated");
        let co = ro.centroid(net);
        let cd = rd.centroid(net);
        let d = match (co, cd) {
            (Some(a), Some(b)) => a.distance(&b).max(100.0),
            _ => 1000.0,
        };
        let g = ro.population
            * production[pair.origin.index()]
            * rd.population
            * attraction[pair.destination.index()]
            / (d * d);
        // Heavy-tailed heterogeneity + sparsity: real OD matrices deviate
        // strongly from the smooth gravity surface.
        let het = rng.normal_with(0.0, spec.heterogeneity_sigma).exp();
        let alive = if rng.uniform() < spec.sparsity {
            0.02
        } else {
            1.0
        };
        let b = g * het * alive;
        max_base = max_base.max(b);
        base.push(b);
    }
    let norm = if max_base > 0.0 {
        spec.peak_trips_per_interval / max_base
    } else {
        0.0
    };

    let mut tod = TodTensor::zeros(ods.len(), t);
    for (i, (id, pair)) in ods.iter().enumerate() {
        let role_o = roles[pair.origin.index()];
        let role_d = roles[pair.destination.index()];
        // Per-OD phase jitter: peaks shift a little between OD pairs.
        let phase = rng.normal_with(0.0, 0.04);
        for ti in 0..t {
            let frac = ((ti as f64 + 0.5) / t as f64 + phase).clamp(0.0, 1.0);
            let profile = time_profile(role_o, role_d, frac);
            let noise = if spec.noise_sigma > 0.0 {
                (rng.normal_with(0.0, spec.noise_sigma)).exp()
            } else {
                1.0
            };
            tod.set(id, ti, (base[i] * norm * profile * noise).max(0.0));
        }
    }
    tod
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::presets;

    fn prepared() -> (RoadNetwork, OdSet) {
        let mut preset = presets::manhattan();
        let mut rng = Rng64::new(0);
        synthesize_populations(&mut preset.network, &mut rng);
        let ods = OdSet::all_pairs(&preset.network);
        (preset.network, ods)
    }

    #[test]
    fn populations_are_positive_and_set() {
        let (net, _) = prepared();
        for r in net.regions() {
            assert!(r.population > 0.0, "region {} population", r.id);
        }
    }

    #[test]
    fn groundtruth_shape_and_sanity() {
        let (net, ods) = prepared();
        let tod = city_groundtruth_tod(&net, &ods, 12, &CityDemandSpec::default());
        assert_eq!(tod.rows(), ods.len());
        assert_eq!(tod.num_intervals(), 12);
        assert!(tod.is_non_negative());
        assert!(tod.is_finite());
        assert!(tod.total() > 0.0);
        // peak OD is near the requested scale (profile can exceed mean 1)
        let max = tod.as_slice().iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(max > 5.0 && max < 300.0, "peak {max}");
    }

    #[test]
    fn commuter_structure_present() {
        let (net, ods) = prepared();
        let roles = assign_roles(&net);
        let tod = city_groundtruth_tod(&net, &ods, 12, &CityDemandSpec::default());
        // Aggregate residential->commercial flows: morning (first half)
        // must dominate evening (second half), and vice versa.
        let mut rc_morning = 0.0;
        let mut rc_evening = 0.0;
        let mut cr_morning = 0.0;
        let mut cr_evening = 0.0;
        for (id, pair) in ods.iter() {
            let (ro, rd) = (roles[pair.origin.index()], roles[pair.destination.index()]);
            let row = tod.row(id);
            let first: f64 = row[..6].iter().sum();
            let second: f64 = row[6..].iter().sum();
            match (ro, rd) {
                (RegionRole::Residential, RegionRole::Commercial) => {
                    rc_morning += first;
                    rc_evening += second;
                }
                (RegionRole::Commercial, RegionRole::Residential) => {
                    cr_morning += first;
                    cr_evening += second;
                }
                _ => {}
            }
        }
        assert!(rc_morning > rc_evening, "{rc_morning} vs {rc_evening}");
        assert!(cr_evening > cr_morning, "{cr_morning} vs {cr_evening}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (net, ods) = prepared();
        let spec = CityDemandSpec::default();
        let a = city_groundtruth_tod(&net, &ods, 6, &spec);
        let b = city_groundtruth_tod(&net, &ods, 6, &spec);
        assert_eq!(a, b);
        let other = CityDemandSpec {
            seed: 43,
            ..CityDemandSpec::default()
        };
        assert_ne!(a, city_groundtruth_tod(&net, &ods, 6, &other));
    }

    #[test]
    fn roles_cover_all_kinds() {
        let (net, _) = prepared();
        let roles = assign_roles(&net);
        assert!(roles.contains(&RegionRole::Residential));
        assert!(roles.contains(&RegionRole::Commercial));
        assert!(roles.contains(&RegionRole::Mixed));
    }
}
