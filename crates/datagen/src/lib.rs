//! # datagen — synthetic workloads for the city-od reproduction
//!
//! The paper's data pipeline (§V-B, §V-D, Fig 7) never trains on real TOD:
//! it (1) generates random TOD tensors over the dataset's OD pairs,
//! (2) simulates them to obtain matched (TOD, volume, speed) triples for
//! training, and (3) hides the real TOD behind simulated speed for
//! testing. This crate implements every generator that pipeline needs:
//!
//! * the five synthetic TOD patterns of §V-B ([`patterns`]),
//! * taxi-like ground-truth demand with commuter structure for the city
//!   presets ([`city`]),
//! * synthetic census/LEHD and surveillance-camera auxiliary data
//!   ([`aux`]; see Table II of the paper),
//! * the two case-study demand scripts — Hangzhou Sunday shopping and the
//!   State College football game ([`casestudy`]),
//! * the taxi-trajectory sampling + scaling estimator of §V-B
//!   ([`taxi`]),
//! * dataset assembly: simulate TOD tensors into training triples and test
//!   observations ([`dataset`]).

#![warn(missing_docs)]

pub mod aux;
pub mod casestudy;
pub mod city;
pub mod dataset;
pub mod patterns;
pub mod taxi;

pub use dataset::{Dataset, TrainingSample};
pub use patterns::TodPattern;
