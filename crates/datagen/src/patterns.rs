//! The five synthetic TOD patterns of §V-B.
//!
//! | Pattern    | Definition (per paper)                                      |
//! |------------|-------------------------------------------------------------|
//! | Random     | values uniform in [1, 20] vehicles/min                      |
//! | Increasing | start at 5 vehicles/min, +2 per 10-minute interval, + noise |
//! | Decreasing | start at 20 vehicles/min, -2 per interval, + noise          |
//! | Gaussian   | N(mean 10, variance 4) vehicles/min                         |
//! | Poisson    | Poisson(lambda = 3) vehicles/min                            |
//!
//! The paper expresses rates in vehicles/minute over 10-minute intervals;
//! our TOD tensors store *trips per interval*, so each rate is multiplied
//! by the interval length in minutes.

use neural::rng::Rng64;
use roadnet::{OdPairId, TodTensor};

/// One of the paper's five synthetic TOD patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TodPattern {
    /// Uniform random rates in [1, 20] veh/min.
    Random,
    /// Linearly increasing rates with additive noise.
    Increasing,
    /// Linearly decreasing rates with additive noise.
    Decreasing,
    /// Gaussian rates, mean 10 veh/min, variance 4.
    Gaussian,
    /// Poisson rates, lambda = 3 veh/min.
    Poisson,
}

impl TodPattern {
    /// All five patterns in the paper's order.
    pub const ALL: [TodPattern; 5] = [
        TodPattern::Random,
        TodPattern::Increasing,
        TodPattern::Decreasing,
        TodPattern::Gaussian,
        TodPattern::Poisson,
    ];

    /// Display name used in Table VIII.
    pub fn name(self) -> &'static str {
        match self {
            TodPattern::Random => "Random",
            TodPattern::Increasing => "Increasing",
            TodPattern::Decreasing => "Decreasing",
            TodPattern::Gaussian => "Gaussian",
            TodPattern::Poisson => "Poisson",
        }
    }

    /// Generates one TOD tensor of shape `(n_od, t)`. `interval_min` is
    /// the interval length in minutes (the paper uses 10); `demand_scale`
    /// uniformly scales all rates so experiments can trade congestion
    /// level against runtime (1.0 reproduces the paper's magnitudes).
    pub fn generate(
        self,
        n_od: usize,
        t: usize,
        interval_min: f64,
        demand_scale: f64,
        rng: &mut Rng64,
    ) -> TodTensor {
        let mut tod = TodTensor::zeros(n_od, t);
        let to_trips = interval_min * demand_scale;
        for i in 0..n_od {
            for ti in 0..t {
                let rate_per_min = match self {
                    TodPattern::Random => rng.uniform_in(1.0, 20.0),
                    TodPattern::Increasing => {
                        let base = 5.0 + 2.0 * ti as f64;
                        (base + rng.normal_with(0.0, 1.0)).max(0.0)
                    }
                    TodPattern::Decreasing => {
                        let base = 20.0 - 2.0 * ti as f64;
                        (base + rng.normal_with(0.0, 1.0)).max(0.0)
                    }
                    TodPattern::Gaussian => rng.normal_with(10.0, 2.0).max(0.0),
                    TodPattern::Poisson => rng.poisson(3.0) as f64,
                };
                tod.set(OdPairId(i), ti, rate_per_min * to_trips);
            }
        }
        tod
    }
}

/// Generates the mixed training corpus of §V-D: `count` TOD tensors with
/// "every 20% of TOD tensors \[having\] a specific pattern".
pub fn mixed_training_set(
    count: usize,
    n_od: usize,
    t: usize,
    interval_min: f64,
    demand_scale: f64,
    rng: &mut Rng64,
) -> Vec<TodTensor> {
    (0..count)
        .map(|k| {
            let pattern = TodPattern::ALL[k % TodPattern::ALL.len()];
            pattern.generate(n_od, t, interval_min, demand_scale, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(tod: &TodTensor, interval_min: f64) -> Vec<f64> {
        tod.as_slice().iter().map(|v| v / interval_min).collect()
    }

    #[test]
    fn random_pattern_within_bounds() {
        let mut rng = Rng64::new(0);
        let tod = TodPattern::Random.generate(10, 12, 10.0, 1.0, &mut rng);
        for r in rates(&tod, 10.0) {
            assert!((1.0..20.0).contains(&r), "rate {r}");
        }
    }

    #[test]
    fn increasing_pattern_trends_up() {
        let mut rng = Rng64::new(1);
        let tod = TodPattern::Increasing.generate(50, 12, 10.0, 1.0, &mut rng);
        let first = tod.interval_totals()[0];
        let last = tod.interval_totals()[11];
        assert!(last > first * 2.0, "ends {first} -> {last}");
    }

    #[test]
    fn decreasing_pattern_trends_down() {
        let mut rng = Rng64::new(2);
        let tod = TodPattern::Decreasing.generate(50, 10, 10.0, 1.0, &mut rng);
        let totals = tod.interval_totals();
        assert!(totals[9] < totals[0] / 2.0);
    }

    #[test]
    fn gaussian_pattern_has_right_mean() {
        let mut rng = Rng64::new(3);
        let tod = TodPattern::Gaussian.generate(200, 12, 10.0, 1.0, &mut rng);
        let mean_rate = tod.total() / (200.0 * 12.0) / 10.0;
        assert!((mean_rate - 10.0).abs() < 0.3, "mean rate {mean_rate}");
    }

    #[test]
    fn poisson_pattern_has_right_mean() {
        let mut rng = Rng64::new(4);
        let tod = TodPattern::Poisson.generate(200, 12, 10.0, 1.0, &mut rng);
        let mean_rate = tod.total() / (200.0 * 12.0) / 10.0;
        assert!((mean_rate - 3.0).abs() < 0.2, "mean rate {mean_rate}");
    }

    #[test]
    fn all_patterns_non_negative_and_finite() {
        let mut rng = Rng64::new(5);
        for p in TodPattern::ALL {
            let tod = p.generate(20, 12, 10.0, 1.0, &mut rng);
            assert!(tod.is_non_negative(), "{p:?}");
            assert!(tod.is_finite(), "{p:?}");
        }
    }

    #[test]
    fn demand_scale_scales_linearly() {
        let tod_full = TodPattern::Gaussian.generate(50, 6, 10.0, 1.0, &mut Rng64::new(6));
        let tod_half = TodPattern::Gaussian.generate(50, 6, 10.0, 0.5, &mut Rng64::new(6));
        assert!((tod_full.total() * 0.5 - tod_half.total()).abs() < 1e-9);
    }

    #[test]
    fn mixed_set_cycles_patterns() {
        let mut rng = Rng64::new(7);
        let set = mixed_training_set(10, 5, 4, 10.0, 1.0, &mut rng);
        assert_eq!(set.len(), 10);
        // tensors 1 and 6 are both Increasing: totals rise with t for both
        for idx in [1usize, 6] {
            let totals = set[idx].interval_totals();
            assert!(totals[3] > totals[0], "tensor {idx} should increase");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TodPattern::Random.generate(5, 5, 10.0, 1.0, &mut Rng64::new(9));
        let b = TodPattern::Random.generate(5, 5, 10.0, 1.0, &mut Rng64::new(9));
        assert_eq!(a, b);
    }
}
