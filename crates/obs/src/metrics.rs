//! The metric primitives: counters, gauges, histograms, span timers.
//!
//! All handles are cheap `Arc` clones of shared state owned by the
//! [`crate::Registry`] that created them, so instrumented code can resolve
//! a handle once (outside the hot loop) and update it lock-free.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
// lint: allow(determinism) — spans feed Timing-class metrics only, which
// are excluded from byte-stable snapshots.
use std::time::Instant;

/// Whether a metric's value is reproducible across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Derived from deterministic computation — identical on every run
    /// and thread count; included in byte-stable snapshots.
    Stable,
    /// Wall-clock measurement — varies run to run; excluded from
    /// byte-stable snapshots.
    Timing,
}

/// A monotonically increasing integer counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins floating-point value.
///
/// Gauges must have a single logical writer per name to stay
/// deterministic (use labels to split writers); concurrent `set`s race by
/// design.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Scale of the fixed-point histogram value sum (micro-units).
const SUM_SCALE: f64 = 1e6;

/// Shared state of a [`Histogram`].
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Finite upper bounds, strictly increasing; an implicit `+inf`
    /// bucket follows.
    pub(crate) bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries, the
    /// last being the overflow bucket). Non-cumulative.
    pub(crate) counts: Vec<AtomicU64>,
    /// Total observations.
    pub(crate) count: AtomicU64,
    /// Sum of observed values in fixed-point micro-units. Integer adds
    /// commute, so the sum is bit-identical under any thread
    /// interleaving — the trade is ~1e-6 absolute resolution per
    /// observation.
    pub(crate) sum_micros: AtomicI64,
}

/// A histogram with fixed bucket boundaries.
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

impl Histogram {
    pub(crate) fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite: {bounds:?}"
        );
        Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicI64::new(0),
        }))
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket with zero sum contribution.
    #[inline]
    pub fn observe(&self, v: f64) {
        let core = &*self.0;
        let idx = match core.bounds.iter().position(|&b| v <= b) {
            Some(i) if v.is_finite() => i,
            _ => core.bounds.len(),
        };
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            core.sum_micros
                .fetch_add((v * SUM_SCALE).round() as i64, Ordering::Relaxed);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values (fixed-point, ~1e-6 resolution).
    pub fn sum(&self) -> f64 {
        self.0.sum_micros.load(Ordering::Relaxed) as f64 / SUM_SCALE
    }

    /// The finite bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Count of the bucket at `idx` (`bounds().len()` = overflow bucket).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.0.counts[idx].load(Ordering::Relaxed)
    }
}

/// A monotonic span timer: created by [`crate::Registry::timer`], records
/// the elapsed wall-clock seconds into its gauge when dropped (or earlier
/// via [`Span::stop`]).
#[derive(Debug)]
pub struct Span {
    gauge: Gauge,
    // lint: allow(determinism) — wall clock lands in a Timing-class gauge.
    start: Instant,
    stopped: bool,
}

impl Span {
    pub(crate) fn new(gauge: Gauge) -> Self {
        Span {
            gauge,
            // lint: allow(determinism) — Timing-class measurement.
            start: Instant::now(),
            stopped: false,
        }
    }

    /// Seconds elapsed since the span started.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Records the elapsed time now and disarms the drop recording.
    /// Returns the elapsed seconds.
    pub fn stop(mut self) -> f64 {
        let s = self.elapsed_s();
        self.gauge.set(s);
        self.stopped = true;
        s
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.stopped {
            self.gauge.set(self.elapsed_s());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share state");
    }

    #[test]
    fn gauge_last_writer_wins() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_buckets_values() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0 (le)
        h.observe(5.0); // bucket 1
        h.observe(100.0); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert!((h.sum() - 106.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_ignores_nonfinite_sum() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_count(1), 2);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn histogram_sum_is_fixed_point() {
        let h = Histogram::new(&[1.0]);
        // 0.1 is not exactly representable; the fixed-point sum rounds
        // each observation to micro-units, so ten of them sum exactly.
        for _ in 0..10 {
            h.observe(0.1);
        }
        assert_eq!(h.sum(), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn span_records_on_drop() {
        let g = Gauge::default();
        g.set(-1.0);
        {
            let _s = Span::new(g.clone());
        }
        assert!(g.get() >= 0.0);
    }

    #[test]
    fn span_stop_disarms_drop() {
        let g = Gauge::default();
        let s = Span::new(g.clone());
        let recorded = s.stop();
        assert!(recorded >= 0.0);
        assert_eq!(g.get(), recorded);
    }
}
