//! The metric registry and its deterministic snapshot/JSON export.

use crate::metrics::{Counter, Gauge, Histogram, Span, Stability};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One registered metric.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    handle: Handle,
    stability: Stability,
}

#[derive(Debug, Default)]
struct Inner {
    /// Keyed by full metric name (labels rendered into the key), so
    /// iteration — and therefore snapshot and JSON order — is
    /// lexicographic regardless of registration order.
    metrics: Mutex<BTreeMap<String, Entry>>,
}

/// A thread-safe metric registry. `Clone` is a cheap handle to the same
/// underlying state, letting instrumented components share one registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

/// One bucket of a histogram snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketSnapshot {
    /// Inclusive upper bound; `None` is the overflow (`+inf`) bucket.
    pub le: Option<f64>,
    /// Observations that fell in this bucket (non-cumulative).
    pub count: u64,
}

/// The value part of one metric snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram totals and buckets.
    Histogram {
        /// Total observations.
        count: u64,
        /// Fixed-point sum of observed values.
        sum: f64,
        /// Per-bucket counts, overflow last.
        buckets: Vec<BucketSnapshot>,
    },
}

/// One metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Full metric name, labels included.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// Stability class.
    pub stability: Stability,
    /// The value.
    pub value: SnapshotValue,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders `name{k="v",…}` with labels sorted by key — the canonical
    /// identity of a labeled metric.
    pub fn key(name: &str, labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return name.to_string();
        }
        let mut sorted = labels.to_vec();
        sorted.sort();
        let mut out = String::with_capacity(name.len() + 16 * sorted.len());
        out.push_str(name);
        out.push('{');
        for (i, (k, v)) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }

    fn register(&self, key: &str, stability: Stability, make: impl FnOnce() -> Handle) -> Handle {
        let mut metrics = self.inner.metrics.lock().expect("obs registry poisoned");
        let entry = metrics.entry(key.to_string()).or_insert_with(|| Entry {
            handle: make(),
            stability,
        });
        entry.handle.clone()
    }

    /// Gets or creates a stable counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, Stability::Stable, || {
            Handle::Counter(Counter::default())
        }) {
            Handle::Counter(c) => c,
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Labeled variant of [`Registry::counter`].
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&Self::key(name, labels))
    }

    /// Gets or creates a stable gauge. One logical writer per name keeps
    /// it deterministic.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_stability(name, Stability::Stable)
    }

    /// Labeled variant of [`Registry::gauge`].
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&Self::key(name, labels))
    }

    /// Gets or creates a wall-clock gauge, excluded from stable snapshots.
    pub fn timing_gauge(&self, name: &str) -> Gauge {
        self.gauge_stability(name, Stability::Timing)
    }

    fn gauge_stability(&self, name: &str, stability: Stability) -> Gauge {
        match self.register(name, stability, || Handle::Gauge(Gauge::default())) {
            Handle::Gauge(g) => g,
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or creates a stable histogram with the given bucket bounds.
    /// The bounds of the first registration win.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_stability(name, bounds, Stability::Stable)
    }

    /// Labeled variant of [`Registry::histogram`].
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        self.histogram(&Self::key(name, labels), bounds)
    }

    /// Gets or creates a wall-clock histogram (e.g. write latencies),
    /// excluded from stable snapshots.
    pub fn timing_histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_stability(name, bounds, Stability::Timing)
    }

    fn histogram_stability(&self, name: &str, bounds: &[f64], stability: Stability) -> Histogram {
        match self.register(name, stability, || {
            Handle::Histogram(Histogram::new(bounds))
        }) {
            Handle::Histogram(h) => h,
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// Starts a monotonic span; elapsed seconds land in the timing gauge
    /// `name` when the returned [`Span`] drops.
    pub fn timer(&self, name: &str) -> Span {
        Span::new(self.timing_gauge(name))
    }

    /// Labeled variant of [`Registry::timer`].
    pub fn timer_with(&self, name: &str, labels: &[(&str, &str)]) -> Span {
        self.timer(&Self::key(name, labels))
    }

    /// Snapshots every metric (optionally excluding the timing class), in
    /// lexicographic name order.
    pub fn snapshot(&self, include_timing: bool) -> Vec<MetricSnapshot> {
        let metrics = self.inner.metrics.lock().expect("obs registry poisoned");
        metrics
            .iter()
            .filter(|(_, e)| include_timing || e.stability == Stability::Stable)
            .map(|(name, e)| MetricSnapshot {
                name: name.clone(),
                kind: e.handle.kind(),
                stability: e.stability,
                value: match &e.handle {
                    Handle::Counter(c) => SnapshotValue::Counter(c.get()),
                    Handle::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Handle::Histogram(h) => SnapshotValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: (0..=h.bounds().len())
                            .map(|i| BucketSnapshot {
                                le: h.bounds().get(i).copied(),
                                count: h.bucket_count(i),
                            })
                            .collect(),
                    },
                },
            })
            .collect()
    }

    /// Full JSON export, timings included — the `cityod --metrics` format.
    pub fn to_json(&self, include_timing: bool) -> String {
        snapshot_to_json(&self.snapshot(include_timing), include_timing)
    }

    /// Byte-stable JSON export: stable metrics only, deterministic order
    /// and formatting. Two runs of the same computation — at any thread
    /// count — produce identical bytes.
    pub fn to_json_stable(&self) -> String {
        self.to_json(false)
    }
}

/// Serialises a snapshot as a small, self-describing JSON document; one
/// metric per line so golden-file diffs are readable.
fn snapshot_to_json(metrics: &[MetricSnapshot], include_timing: bool) -> String {
    let mut out = String::with_capacity(64 + metrics.len() * 80);
    out.push_str("{\n  \"format_version\": 1,\n  \"stable_only\": ");
    out.push_str(if include_timing { "false" } else { "true" });
    out.push_str(",\n  \"metrics\": [");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"name\": ");
        write_json_string(&mut out, &m.name);
        out.push_str(", \"kind\": \"");
        out.push_str(m.kind);
        out.push_str("\", \"timing\": ");
        out.push_str(match m.stability {
            Stability::Timing => "true",
            Stability::Stable => "false",
        });
        match &m.value {
            SnapshotValue::Counter(v) => {
                out.push_str(", \"value\": ");
                out.push_str(&v.to_string());
            }
            SnapshotValue::Gauge(v) => {
                out.push_str(", \"value\": ");
                write_json_f64(&mut out, *v);
            }
            SnapshotValue::Histogram {
                count,
                sum,
                buckets,
            } => {
                out.push_str(", \"count\": ");
                out.push_str(&count.to_string());
                out.push_str(", \"sum\": ");
                write_json_f64(&mut out, *sum);
                out.push_str(", \"buckets\": [");
                for (bi, b) in buckets.iter().enumerate() {
                    if bi > 0 {
                        out.push_str(", ");
                    }
                    out.push_str("{\"le\": ");
                    match b.le {
                        Some(bound) => write_json_f64(&mut out, bound),
                        None => out.push_str("\"+inf\""),
                    }
                    out.push_str(", \"count\": ");
                    out.push_str(&b.count.to_string());
                    out.push('}');
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes an f64 as a JSON number: Rust's shortest round-trip `Display`
/// (deterministic for identical bits); non-finite values become `null`.
fn write_json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = v.to_string();
    out.push_str(&s);
    // `Display` prints integral floats without a fraction ("3"); keep the
    // token unambiguously a float so readers round-trip the type.
    if !s.contains('.') && !s.contains('e') {
        out.push_str(".0");
    }
}

/// Minimal JSON string escaping (quotes, backslash, control characters).
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_sorts_labels() {
        assert_eq!(Registry::key("m", &[]), "m");
        assert_eq!(
            Registry::key("m", &[("z", "1"), ("a", "2")]),
            "m{a=\"2\",z=\"1\"}"
        );
    }

    #[test]
    fn handles_share_state_across_lookups() {
        let r = Registry::new();
        r.counter("c").inc();
        r.counter("c").inc();
        assert_eq!(r.counter("c").get(), 2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m").inc();
        r.gauge("m");
    }

    #[test]
    fn snapshot_is_sorted_regardless_of_registration_order() {
        let r = Registry::new();
        r.counter("zzz").inc();
        r.gauge("aaa").set(1.0);
        r.counter("mmm").inc();
        let names: Vec<String> = r.snapshot(true).into_iter().map(|m| m.name).collect();
        assert_eq!(names, ["aaa", "mmm", "zzz"]);
    }

    #[test]
    fn stable_snapshot_excludes_timings() {
        let r = Registry::new();
        r.counter("events_total").inc();
        r.timing_gauge("elapsed_seconds").set(1.23);
        {
            let _s = r.timer("span_seconds");
        }
        let stable = r.snapshot(false);
        assert_eq!(stable.len(), 1);
        assert_eq!(stable[0].name, "events_total");
        assert_eq!(r.snapshot(true).len(), 3);
    }

    #[test]
    fn json_is_reproducible_and_escapes() {
        let r = Registry::new();
        r.counter_with("c", &[("m", "a\"b")]).add(2);
        r.gauge("g").set(1.5);
        r.histogram("h", &[1.0, 2.0]).observe(1.5);
        let a = r.to_json_stable();
        let b = r.to_json_stable();
        assert_eq!(a, b);
        assert!(a.contains("\\\""), "label quote must be escaped: {a}");
        assert!(a.contains("\"value\": 1.5"));
        assert!(a.contains("\"le\": 2.0"));
        assert!(a.contains("{\"le\": \"+inf\", \"count\": 0}"));
    }

    #[test]
    fn json_floats_always_carry_a_fraction() {
        let mut s = String::new();
        write_json_f64(&mut s, 3.0);
        assert_eq!(s, "3.0");
        let mut s = String::new();
        write_json_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut s = String::new();
        write_json_f64(&mut s, 0.25);
        assert_eq!(s, "0.25");
    }

    #[test]
    fn concurrent_writers_sum_deterministically() {
        let r = Registry::new();
        let c = r.counter("par_total");
        let h = r.histogram("par_hist", &[10.0, 100.0]);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe((t * 1000 + i) as f64 * 0.001);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        // Fixed-point accumulation: every observation rounds to an exact
        // micro-unit integer, so the total is order-independent.
        assert_eq!(h.sum(), 7998.0);
    }
}
