//! # obs — metrics and tracing substrate
//!
//! A zero-dependency (std-only, in the spirit of the `vendor/` stand-ins)
//! observability layer for the city-od workspace: counters, gauges,
//! histograms with fixed bucket boundaries, monotonic span timers, and a
//! thread-safe [`Registry`] whose snapshots are **byte-stable**: the same
//! computation produces the identical JSON document on every run and on
//! every worker-thread count.
//!
//! ## Determinism contract
//!
//! The workspace's parallel sections are bit-identical across thread
//! counts (DESIGN.md §5b); this crate extends that contract to its
//! metrics. Three mechanisms make a snapshot reproducible:
//!
//! 1. **Deterministic ordering** — the registry keys metrics by full name
//!    (labels included) in a sorted map, so export order never depends on
//!    registration or scheduling order.
//! 2. **Commutative accumulation** — counters are integer adds, and
//!    histograms accumulate bucket hits as integers and their value sum
//!    in fixed-point micro-units (`round(v * 1e6)` as an integer add), so
//!    concurrent writers from any interleaving produce the same totals.
//!    Gauges are last-writer-wins and must be single-writer per name to
//!    stay deterministic — instrumentation in this workspace follows that
//!    rule (per-method / per-stage label keys).
//! 3. **Stability classes** — every metric is either [`Stability::Stable`]
//!    (derived from deterministic computation: event counts, losses,
//!    residuals) or [`Stability::Timing`] (wall-clock measurements).
//!    [`Registry::to_json_stable`] exports only the stable class, which is
//!    what golden tests and the thread-invariance CI job compare
//!    byte-for-byte; [`Registry::to_json`] includes timings for human
//!    consumption (`cityod --metrics`).
//!
//! ## Usage
//!
//! ```
//! let reg = obs::Registry::new();
//! reg.counter("sim_spawned_total").add(3);
//! reg.gauge_with("eval_rmse_tod", &[("method", "OVS")]).set(1.25);
//! let h = reg.histogram("trainer_v2s_loss", obs::LOSS_BUCKETS);
//! h.observe(0.02);
//! {
//!     let _span = reg.timer("stage_seconds"); // records on drop (Timing)
//! }
//! let json = reg.to_json_stable();
//! assert!(json.contains("sim_spawned_total"));
//! ```
//!
//! Components default to the process-global registry ([`global`]); tests
//! that need isolation inject a local [`Registry`] instead (e.g.
//! `Simulation::with_registry`, `OvsTrainer::with_registry`).

#![warn(missing_docs)]

mod metrics;
mod registry;

pub use metrics::{Counter, Gauge, Histogram, Span, Stability};
pub use registry::{BucketSnapshot, MetricSnapshot, Registry, SnapshotValue};

use std::sync::OnceLock;

/// Fixed bucket boundaries for loss-valued histograms (log-spaced).
pub const LOSS_BUCKETS: &[f64] = &[
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0, 1000.0,
];

/// Fixed bucket boundaries for gradient-norm histograms.
pub const NORM_BUCKETS: &[f64] = &[1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1000.0];

/// Fixed bucket boundaries for vehicle-count histograms (occupancy,
/// in-network population).
pub const COUNT_BUCKETS: &[f64] = &[
    0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
];

/// Fixed bucket boundaries for duration histograms, in seconds.
pub const DURATION_BUCKETS: &[f64] = &[
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0,
];

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry. Instrumented components write here unless
/// a local registry is injected.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_is_a_singleton() {
        let a = super::global();
        let b = super::global();
        a.counter("obs_selftest_total").inc();
        assert!(b.counter("obs_selftest_total").get() >= 1);
    }

    #[test]
    fn bucket_tables_are_sorted() {
        for table in [
            super::LOSS_BUCKETS,
            super::NORM_BUCKETS,
            super::COUNT_BUCKETS,
            super::DURATION_BUCKETS,
        ] {
            assert!(table.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
