//! The registry's core promise: snapshots are byte-stable across runs,
//! registration orders, and writer-thread counts.

use obs::Registry;

/// Drives a registry through a fixed workload with `threads` writers.
fn workload(reg: &Registry, threads: usize) {
    let total: u64 = 10_000;
    let per = total / threads as u64;
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let reg = reg.clone();
            scope.spawn(move || {
                let c = reg.counter("events_total");
                let h = reg.histogram("values", obs::COUNT_BUCKETS);
                for i in (t * per)..((t + 1) * per) {
                    c.inc();
                    h.observe((i % 97) as f64 * 0.25);
                }
            });
        }
    });
    // Gauges are single-writer: set once, outside the parallel section.
    reg.gauge("final_value").set(0.125);
    reg.timing_gauge("elapsed_seconds").set(1.0);
}

#[test]
fn stable_snapshot_is_thread_count_invariant() {
    let mut snapshots = Vec::new();
    for threads in [1, 2, 4, 8] {
        let reg = Registry::new();
        workload(&reg, threads);
        snapshots.push(reg.to_json_stable());
    }
    for s in &snapshots[1..] {
        assert_eq!(&snapshots[0], s, "stable JSON must not depend on threads");
    }
}

#[test]
fn registration_order_does_not_change_bytes() {
    let a = Registry::new();
    a.counter("x_total").add(1);
    a.gauge("a_value").set(2.0);
    a.histogram("m_hist", &[1.0]).observe(0.5);

    let b = Registry::new();
    b.histogram("m_hist", &[1.0]).observe(0.5);
    b.gauge("a_value").set(2.0);
    b.counter("x_total").add(1);

    assert_eq!(a.to_json_stable(), b.to_json_stable());
}

#[test]
fn full_export_includes_timings_and_is_valid_shape() {
    let reg = Registry::new();
    workload(&reg, 2);
    let full = reg.to_json(true);
    assert!(full.contains("\"elapsed_seconds\""));
    assert!(full.contains("\"stable_only\": false"));
    // Braces and brackets must balance (cheap well-formedness check; the
    // CLI test parses the same format with a real JSON reader).
    for (open, close) in [('{', '}'), ('[', ']')] {
        let o = full.chars().filter(|&c| c == open).count();
        let c = full.chars().filter(|&c| c == close).count();
        assert_eq!(o, c, "unbalanced {open}{close} in {full}");
    }
    let stable = reg.to_json_stable();
    assert!(!stable.contains("elapsed_seconds"));
}
