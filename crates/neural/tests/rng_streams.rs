//! Property tests for per-index RNG stream splitting: parallel data
//! generation derives one independent `Rng64` per work item, so stream
//! seeds must never collide across the index range a corpus can use.

use neural::rng::Rng64;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any master seed, 10_000 consecutive indices map to 10_000
    /// distinct stream seeds (and none equals the master itself).
    fn stream_seeds_never_collide_across_10k_indices(master in 0u64..u64::MAX) {
        let mut seen = HashSet::with_capacity(10_000);
        for index in 0..10_000u64 {
            let seed = Rng64::stream_seed(master, index);
            prop_assert!(seen.insert(seed), "collision at index {index}");
            prop_assert!(seed != master, "index {index} collapsed onto the master seed");
        }
    }

    /// Randomly scattered (not just consecutive) indices stay collision
    /// free, and streams for a fixed index differ across master seeds.
    fn scattered_indices_stay_distinct(
        master in 0u64..u64::MAX,
        indices in proptest::collection::vec(0u64..1_000_000_000, 200),
    ) {
        let unique_in: HashSet<u64> = indices.iter().copied().collect();
        let unique_out: HashSet<u64> = indices
            .iter()
            .map(|&i| Rng64::stream_seed(master, i))
            .collect();
        prop_assert_eq!(unique_in.len(), unique_out.len());
        prop_assert!(Rng64::stream_seed(master, 0) != Rng64::stream_seed(master ^ 1, 0));
    }
}
