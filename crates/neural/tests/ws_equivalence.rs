//! The workspace (`*_ws`) forward/backward paths must be *bit-identical*
//! to the plain allocating paths: the OVS trainer switches between them
//! freely (e.g. warm-started restarts) and the golden-metrics suite pins
//! exact loss values.

use neural::layers::{
    ActKind, Activation, Dense, Layer, Lstm, SeqActivation, SeqLayer, SeqSequential, Sequential,
    TimeDistributed,
};
use neural::rng::Rng64;
use neural::{Matrix, Tensor3, Workspace};

fn flat_net(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    Sequential::new(vec![
        Box::new(Dense::new(3, 8, &mut rng)),
        Box::new(Activation::new(ActKind::Tanh)),
        Box::new(Dense::new(8, 2, &mut rng)),
        Box::new(Activation::new(ActKind::Sigmoid)),
    ])
}

fn seq_net(seed: u64) -> SeqSequential {
    let mut rng = Rng64::new(seed);
    SeqSequential::new(vec![
        Box::new(Lstm::new(2, 6, &mut rng)),
        Box::new(Lstm::new(6, 5, &mut rng)),
        Box::new(TimeDistributed::new(Dense::new(5, 1, &mut rng))),
        Box::new(SeqActivation::new(ActKind::Sigmoid)),
    ])
}

fn collect_grads_flat(net: &mut Sequential) -> Vec<Vec<f64>> {
    let mut grads = Vec::new();
    net.visit_params(&mut |_, g| grads.push(g.as_slice().to_vec()));
    grads
}

fn collect_grads_seq(net: &mut SeqSequential) -> Vec<Vec<f64>> {
    let mut grads = Vec::new();
    net.visit_params(&mut |_, g| grads.push(g.as_slice().to_vec()));
    grads
}

#[test]
fn flat_ws_path_is_bit_identical_to_plain_path() {
    let mut plain = flat_net(7);
    let mut ws_net = flat_net(7);
    let mut ws = Workspace::new();
    let mut rng = Rng64::new(11);
    for step in 0..4 {
        let mut x = Matrix::zeros(5, 3);
        rng.fill_normal(x.as_mut_slice());
        let mut dy = Matrix::zeros(5, 2);
        rng.fill_normal(dy.as_mut_slice());

        let y_plain = plain.forward(&x, true);
        let dx_plain = plain.backward(&dy);

        let y_ws = ws_net.forward_ws(&x, true, &mut ws);
        let dx_ws = ws_net.backward_ws(&dy, &mut ws);

        assert_eq!(y_plain.as_slice(), y_ws.as_slice(), "forward, step {step}");
        assert_eq!(
            dx_plain.as_slice(),
            dx_ws.as_slice(),
            "backward, step {step}"
        );
        assert_eq!(
            collect_grads_flat(&mut plain),
            collect_grads_flat(&mut ws_net),
            "accumulated grads, step {step}"
        );
        ws.give(y_ws);
        ws.give(dx_ws);
    }
}

#[test]
fn seq_ws_path_is_bit_identical_to_plain_path() {
    let mut plain = seq_net(3);
    let mut ws_net = seq_net(3);
    let mut ws = Workspace::new();
    let mut rng = Rng64::new(13);
    for step in 0..4 {
        let mut x = Tensor3::zeros(4, 6, 2);
        rng.fill_normal(x.as_mut_slice());
        let mut dy = Tensor3::zeros(4, 6, 1);
        rng.fill_normal(dy.as_mut_slice());

        let y_plain = plain.forward(&x, true);
        let dx_plain = plain.backward(&dy);

        let y_ws = ws_net.forward_ws(&x, true, &mut ws);
        let dx_ws = ws_net.backward_ws(&dy, &mut ws);

        assert_eq!(y_plain.as_slice(), y_ws.as_slice(), "forward, step {step}");
        assert_eq!(
            dx_plain.as_slice(),
            dx_ws.as_slice(),
            "backward, step {step}"
        );
        assert_eq!(
            collect_grads_seq(&mut plain),
            collect_grads_seq(&mut ws_net),
            "accumulated grads, step {step}"
        );
        ws.give3(y_ws);
        ws.give3(dx_ws);
    }
}

#[test]
fn mixing_plain_and_ws_calls_on_one_model_is_consistent() {
    // The trainer may run eval passes through `forward` while the training
    // loop uses `forward_ws`; interleaving must not disturb either.
    let mut net = seq_net(21);
    let mut reference = seq_net(21);
    let mut ws = Workspace::new();
    let mut rng = Rng64::new(5);
    let mut x = Tensor3::zeros(3, 4, 2);
    rng.fill_normal(x.as_mut_slice());

    let y0 = net.forward_ws(&x, true, &mut ws);
    let y1 = net.forward(&x, false);
    let y2 = net.forward_ws(&x, false, &mut ws);
    let want = reference.forward(&x, true);
    assert_eq!(y0.as_slice(), want.as_slice());
    assert_eq!(y1.as_slice(), want.as_slice());
    assert_eq!(y2.as_slice(), want.as_slice());
}

#[test]
fn ws_gradients_pass_finite_difference_check() {
    // Gradcheck through the workspace path: central differences of the
    // ws-forward loss vs the ws-backward analytic gradient.
    let mut net = seq_net(9);
    let mut ws = Workspace::new();
    let mut rng = Rng64::new(17);
    let mut x = Tensor3::zeros(2, 4, 2);
    rng.fill_normal(x.as_mut_slice());

    // loss = sum(y); dL/dy = 1
    let dy = Tensor3::from_vec(2, 4, 1, vec![1.0; 8]).unwrap();
    net.forward_ws(&x, true, &mut ws);
    let dx = net.backward_ws(&dy, &mut ws);

    let eps = 1e-6;
    for idx in 0..x.as_slice().len() {
        let orig = x.as_slice()[idx];
        x.as_mut_slice()[idx] = orig + eps;
        let lp: f64 = net.forward_ws(&x, true, &mut ws).as_slice().iter().sum();
        x.as_mut_slice()[idx] = orig - eps;
        let lm: f64 = net.forward_ws(&x, true, &mut ws).as_slice().iter().sum();
        x.as_mut_slice()[idx] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = dx.as_slice()[idx];
        assert!(
            (numeric - analytic).abs() < 1e-6,
            "input {idx}: numeric {numeric} vs analytic {analytic}"
        );
    }
}
