//! Property-based tests for the dense linear-algebra kernels.

use neural::matrix::{softmax_rows, Matrix};
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, vals: &[f64]) -> Matrix {
    Matrix::from_vec(rows, cols, vals.to_vec()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (A B) C == A (B C) within numerical tolerance.
    #[test]
    fn matmul_is_associative(
        a in proptest::collection::vec(-3.0f64..3.0, 2 * 3),
        b in proptest::collection::vec(-3.0f64..3.0, 3 * 4),
        c in proptest::collection::vec(-3.0f64..3.0, 4 * 2),
    ) {
        let a = mat(2, 3, &a);
        let b = mat(3, 4, &b);
        let c = mat(4, 2, &c);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn transpose_reverses_products(
        a in proptest::collection::vec(-3.0f64..3.0, 2 * 3),
        b in proptest::collection::vec(-3.0f64..3.0, 3 * 2),
    ) {
        let a = mat(2, 3, &a);
        let b = mat(3, 2, &b);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// The fused transpose kernels agree with explicit transposition.
    #[test]
    fn fused_kernels_agree(
        a in proptest::collection::vec(-3.0f64..3.0, 3 * 2),
        b in proptest::collection::vec(-3.0f64..3.0, 3 * 4),
    ) {
        let a = mat(3, 2, &a);
        let b = mat(3, 4, &b);
        let fused = a.matmul_at_b(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
        let c = mat(3, 2, a.as_slice());
        let fused2 = b.transpose().matmul_a_bt(&c.transpose());
        let explicit2 = b.transpose().matmul(&c);
        for (x, y) in fused2.as_slice().iter().zip(explicit2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Row sums and broadcasts are inverse-compatible: subtracting the
    /// broadcast of the row-sum of a one-row matrix yields zero.
    #[test]
    fn broadcast_roundtrip(vals in proptest::collection::vec(-5.0f64..5.0, 4)) {
        let bias = Matrix::row_vector(&vals);
        let mut m = Matrix::zeros(3, 4);
        m.add_row_broadcast(&bias);
        let sums = m.sum_rows();
        for (s, &v) in sums.as_slice().iter().zip(&vals) {
            prop_assert!((s - 3.0 * v).abs() < 1e-12);
        }
    }

    /// Softmax output is invariant under per-row constant shifts.
    #[test]
    fn softmax_shift_invariance(
        vals in proptest::collection::vec(-20.0f64..20.0, 2 * 4),
        shift in -100.0f64..100.0,
    ) {
        let a = mat(2, 4, &vals);
        let mut sa = a.clone();
        softmax_rows(&mut sa);
        let mut sb = a.map(|v| v + shift);
        softmax_rows(&mut sb);
        for (x, y) in sa.as_slice().iter().zip(sb.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
