//! Steady-state training steps through the `_ws` (workspace) paths must
//! be allocation-free: after a short warmup that sizes the buffer pool,
//! the optimiser moment slots, and the LSTM state, a training step
//! touches the heap zero times.
//!
//! A counting `#[global_allocator]` wraps `System`; the whole file is one
//! `#[test]` so no sibling test thread can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use neural::layers::{
    ActKind, Activation, Dense, Layer, Lstm, SeqActivation, SeqLayer, SeqSequential, Sequential,
    TimeDistributed,
};
use neural::loss::{mse_into, mse_seq_into};
use neural::matrix::Matrix;
use neural::optim::{Adam, Optimizer};
use neural::rng::Rng64;
use neural::tensor3::Tensor3;
use neural::workspace::Workspace;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump; every
// call forwards the caller's layout/pointer unchanged, so `System`'s own
// GlobalAlloc contract is what holds the invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the unmodified layout to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller upholds GlobalAlloc's contract; layout unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the unmodified pointer/layout to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator's `alloc`, which is
        // `System.alloc`; same layout per the GlobalAlloc contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards the unmodified arguments to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from `System.alloc`; layout/new_size forwarded
        // unchanged per the GlobalAlloc contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn heap_allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn flat_step(
    model: &mut Sequential,
    opt: &mut Adam,
    x: &Matrix,
    target: &Matrix,
    grad: &mut Matrix,
    ws: &mut Workspace,
) -> f64 {
    let y = model.forward_ws(x, true, ws);
    let loss = mse_into(&y, target, grad);
    ws.give(y);
    let dx = model.backward_ws(grad, ws);
    ws.give(dx);
    opt.begin_step();
    let mut slot = 0;
    model.visit_params(&mut |p, g| {
        opt.apply(slot, p, g);
        slot += 1;
    });
    model.zero_grad();
    loss
}

fn seq_step(
    model: &mut SeqSequential,
    opt: &mut Adam,
    x: &Tensor3,
    target: &Tensor3,
    grad: &mut Tensor3,
    ws: &mut Workspace,
) -> f64 {
    let y = model.forward_ws(x, true, ws);
    let loss = mse_seq_into(&y, target, grad);
    ws.give3(y);
    let dx = model.backward_ws(grad, ws);
    ws.give3(dx);
    opt.begin_step();
    let mut slot = 0;
    model.visit_params(&mut |p, g| {
        opt.apply(slot, p, g);
        slot += 1;
    });
    model.zero_grad();
    loss
}

/// One test covering both stacks: interleaved tests in this binary would
/// share the global counter, so everything runs on one thread here.
#[test]
fn training_steps_are_allocation_free_after_warmup() {
    // --- flat Dense stack ---------------------------------------------
    let mut rng = Rng64::new(7);
    let mut flat = Sequential::new(vec![
        Box::new(Dense::new(3, 16, &mut rng)) as Box<dyn Layer>,
        Box::new(Activation::new(ActKind::Tanh)),
        Box::new(Dense::new(16, 2, &mut rng)),
        Box::new(Activation::new(ActKind::Sigmoid)),
    ]);
    let mut x = Matrix::zeros(8, 3);
    rng.fill_normal(x.as_mut_slice());
    let mut target = Matrix::zeros(8, 2);
    rng.fill_normal(target.as_mut_slice());
    let mut grad = Matrix::zeros(8, 2);
    let mut ws = Workspace::new();
    let mut opt = Adam::new(1e-3);
    for _ in 0..3 {
        flat_step(&mut flat, &mut opt, &x, &target, &mut grad, &mut ws);
    }
    let before = heap_allocs();
    let mut loss = 0.0;
    for _ in 0..10 {
        loss += flat_step(&mut flat, &mut opt, &x, &target, &mut grad, &mut ws);
    }
    let flat_allocs = heap_allocs() - before;
    assert!(loss.is_finite());
    assert_eq!(
        flat_allocs, 0,
        "flat training step allocated {flat_allocs} times over 10 steps"
    );

    // --- LSTM sequence stack (the paper's V2S shape) ------------------
    let mut seq = SeqSequential::new(vec![
        Box::new(Lstm::new(1, 8, &mut rng)) as Box<dyn SeqLayer>,
        Box::new(Lstm::new(8, 8, &mut rng)),
        Box::new(TimeDistributed::new(Dense::new(8, 1, &mut rng))),
        Box::new(SeqActivation::new(ActKind::Sigmoid)),
    ]);
    let mut xs = Tensor3::zeros(16, 6, 1);
    rng.fill_normal(xs.as_mut_slice());
    let mut targets = Tensor3::zeros(16, 6, 1);
    rng.fill_normal(targets.as_mut_slice());
    let mut grads = Tensor3::zeros(16, 6, 1);
    let mut ws_seq = Workspace::new();
    let mut opt_seq = Adam::new(1e-3);
    for _ in 0..3 {
        seq_step(
            &mut seq,
            &mut opt_seq,
            &xs,
            &targets,
            &mut grads,
            &mut ws_seq,
        );
    }
    let before = heap_allocs();
    let mut loss = 0.0;
    for _ in 0..10 {
        loss += seq_step(
            &mut seq,
            &mut opt_seq,
            &xs,
            &targets,
            &mut grads,
            &mut ws_seq,
        );
    }
    let seq_allocs = heap_allocs() - before;
    assert!(loss.is_finite());
    assert_eq!(
        seq_allocs, 0,
        "LSTM training step allocated {seq_allocs} times over 10 steps"
    );
}
