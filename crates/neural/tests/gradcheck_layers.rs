//! Integration-level gradient checks for the layers the OVS model relies
//! on most: `Conv1d` (speed-pattern feature extraction), `Lstm` (temporal
//! encoder), and `Softmax` (attention-weight head). Each analytic backward
//! pass is compared against central finite differences of the scalar loss
//! `L(y) = 0.5 * ||y||^2`; every forward runs with `train = false`, so
//! dropout (were any present in the stack under test) is disabled.

use neural::gradcheck::{check_layer_input, check_seq_layer_input, check_seq_layer_params};
use neural::layers::{Conv1d, Lstm, Softmax};
use neural::rng::Rng64;
use neural::{Matrix, Tensor3};

const EPS: f64 = 1e-5;
const TOL: f64 = 1e-6;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::new(seed);
    let mut m = Matrix::zeros(rows, cols);
    rng.fill_normal(m.as_mut_slice());
    m
}

fn random_tensor(b: usize, t: usize, f: usize, seed: u64) -> Tensor3 {
    let mut rng = Rng64::new(seed);
    let mut x = Tensor3::zeros(b, t, f);
    rng.fill_normal(x.as_mut_slice());
    x
}

#[test]
fn softmax_input_gradient_matches_finite_differences() {
    let mut layer = Softmax::new();
    let x = random_matrix(4, 6, 11);
    assert!(check_layer_input(&mut layer, &x, EPS, TOL));
}

#[test]
fn softmax_input_gradient_survives_large_logits() {
    // Shifted logits exercise the max-subtraction stabilisation path.
    let mut layer = Softmax::new();
    let x = random_matrix(3, 5, 12).map(|v| v * 4.0 + 50.0);
    assert!(check_layer_input(&mut layer, &x, EPS, 1e-5));
}

#[test]
fn conv1d_input_gradient_matches_finite_differences() {
    let mut rng = Rng64::new(21);
    let mut layer = Conv1d::new(2, 3, 3, &mut rng);
    let x = random_tensor(2, 6, 2, 22);
    assert!(check_seq_layer_input(&mut layer, &x, EPS, TOL));
}

#[test]
fn conv1d_param_gradients_match_finite_differences() {
    let mut rng = Rng64::new(23);
    let mut layer = Conv1d::new(2, 3, 3, &mut rng);
    let x = random_tensor(2, 6, 2, 24);
    assert!(check_seq_layer_params(&mut layer, &x, EPS, TOL));
}

#[test]
fn lstm_input_gradient_matches_finite_differences() {
    let mut rng = Rng64::new(31);
    let mut layer = Lstm::new(3, 4, &mut rng);
    let x = random_tensor(2, 5, 3, 32);
    assert!(check_seq_layer_input(&mut layer, &x, EPS, TOL));
}

#[test]
fn lstm_param_gradients_match_finite_differences() {
    let mut rng = Rng64::new(33);
    let mut layer = Lstm::new(3, 4, &mut rng);
    let x = random_tensor(2, 5, 3, 34);
    assert!(check_seq_layer_params(&mut layer, &x, EPS, TOL));
}
