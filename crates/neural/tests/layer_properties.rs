//! Property-based tests for the neural library: gradient checks on random
//! shapes and inputs, softmax invariants, optimiser descent.

use neural::gradcheck::{
    check_layer_input, check_layer_params, check_seq_layer_input, check_seq_layer_params,
};
use neural::layers::{ActKind, Activation, Conv1d, Dense, Layer, Lstm, Sequential};
use neural::loss::mse;
use neural::matrix::softmax_rows;
use neural::optim::{Adam, Optimizer, Sgd};
use neural::rng::Rng64;
use neural::{Matrix, Tensor3};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Dense layers pass input & parameter gradient checks at arbitrary
    /// shapes.
    #[test]
    fn dense_gradcheck_random_shapes(seed in 0u64..1000, rows in 1usize..5, inp in 1usize..6, out in 1usize..6) {
        let mut rng = Rng64::new(seed);
        let mut d = Dense::new(inp, out, &mut rng);
        let mut x = Matrix::zeros(rows, inp);
        rng.fill_normal(x.as_mut_slice());
        prop_assert!(check_layer_input(&mut d, &x, 1e-6, 1e-6));
        prop_assert!(check_layer_params(&mut d, &x, 1e-6, 1e-6));
    }

    /// LSTMs pass gradient checks at arbitrary small shapes.
    #[test]
    fn lstm_gradcheck_random_shapes(seed in 0u64..1000, batch in 1usize..3, time in 1usize..5, hidden in 1usize..4) {
        let mut rng = Rng64::new(seed);
        let mut l = Lstm::new(2, hidden, &mut rng);
        let mut x = Tensor3::zeros(batch, time, 2);
        rng.fill_normal(x.as_mut_slice());
        prop_assert!(check_seq_layer_input(&mut l, &x, 1e-6, 1e-5));
        prop_assert!(check_seq_layer_params(&mut l, &x, 1e-6, 1e-5));
    }

    /// Convolutions pass gradient checks at arbitrary small shapes.
    #[test]
    fn conv_gradcheck_random_shapes(seed in 0u64..1000, batch in 1usize..3, time in 1usize..6, cin in 1usize..3, cout in 1usize..3) {
        let mut rng = Rng64::new(seed);
        let mut c = Conv1d::new(cin, cout, 3, &mut rng);
        let mut x = Tensor3::zeros(batch, time, cin);
        rng.fill_normal(x.as_mut_slice());
        prop_assert!(check_seq_layer_input(&mut c, &x, 1e-6, 1e-6));
        prop_assert!(check_seq_layer_params(&mut c, &x, 1e-6, 1e-6));
    }

    /// Softmax rows always form a probability distribution and preserve
    /// the argmax of the logits.
    #[test]
    fn softmax_rows_invariants(logits in proptest::collection::vec(-50.0f64..50.0, 3 * 5)) {
        let m = Matrix::from_vec(3, 5, logits).unwrap();
        let mut p = m.clone();
        softmax_rows(&mut p);
        for r in 0..3 {
            let row: f64 = p.row(r).iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
            let argmax_logits = m.row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            let argmax_probs = p.row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            prop_assert_eq!(argmax_logits, argmax_probs);
        }
    }

    /// One optimiser step along the analytic gradient reduces the loss of
    /// a smooth network (small enough learning rate).
    #[test]
    fn gradient_step_descends(seed in 0u64..500) {
        let mut rng = Rng64::new(seed);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(3, 6, &mut rng)),
            Box::new(Activation::new(ActKind::Tanh)),
            Box::new(Dense::new(6, 2, &mut rng)),
        ]);
        let mut x = Matrix::zeros(4, 3);
        rng.fill_normal(x.as_mut_slice());
        let mut y = Matrix::zeros(4, 2);
        rng.fill_normal(y.as_mut_slice());

        let before = mse(&net.forward(&x, true), &y).0;
        let (_, grad) = mse(&net.forward(&x, true), &y);
        net.backward(&grad);
        let mut opt = Sgd::new(1e-3);
        opt.step(&mut net);
        net.zero_grad();
        let after = mse(&net.forward(&x, false), &y).0;
        prop_assert!(after <= before + 1e-12, "{after} vs {before}");
    }
}

/// Adam fits a random linear regression to near-zero loss.
#[test]
fn adam_solves_random_linear_regression() {
    let mut rng = Rng64::new(3);
    let mut w_true = Matrix::zeros(4, 2);
    rng.fill_normal(w_true.as_mut_slice());
    let mut x = Matrix::zeros(32, 4);
    rng.fill_normal(x.as_mut_slice());
    let y = x.matmul(&w_true);

    let mut net = Dense::new(4, 2, &mut rng);
    let mut opt = Adam::new(0.05);
    let mut last = f64::INFINITY;
    for _ in 0..500 {
        let pred = net.forward(&x, true);
        let (loss, grad) = mse(&pred, &y);
        net.backward(&grad);
        opt.step(&mut net);
        net.zero_grad();
        last = loss;
    }
    assert!(last < 1e-6, "final loss {last}");
}
