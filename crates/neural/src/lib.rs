//! # neural — a from-scratch neural-network library
//!
//! The workspace's substitute for PyTorch/TensorFlow (see DESIGN.md): no
//! mainstream Rust ML crate is available offline, and the paper's networks
//! (Table IV — FC(16) stacks, 1x3 Conv1d pairs, LSTM(128)) are small enough
//! to implement directly with exact, hand-derived backpropagation.
//!
//! Everything is `f64` so the finite-difference gradient checker
//! ([`gradcheck`]) can validate every layer to tight tolerances — the tests
//! of this crate are the ground truth that makes the OVS training results
//! in `ovs-core` trustworthy.
//!
//! Layout conventions:
//!
//! * [`Matrix`] is row-major `(rows, cols)`; batches are rows, features are
//!   columns.
//! * [`Tensor3`] is `(batch, time, features)` for sequence layers
//!   ([`layers::Lstm`], [`layers::Conv1d`]).
//!
//! ```
//! use neural::layers::{Dense, Activation, ActKind, Layer, Sequential};
//! use neural::loss::mse;
//! use neural::optim::{Adam, Optimizer};
//! use neural::Matrix;
//! use neural::rng::Rng64;
//!
//! let mut rng = Rng64::new(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(2, 8, &mut rng)),
//!     Box::new(Activation::new(ActKind::Tanh)),
//!     Box::new(Dense::new(8, 1, &mut rng)),
//! ]);
//! let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
//! let y = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]).unwrap();
//! let mut opt = Adam::new(0.05);
//! for _ in 0..300 {
//!     let pred = net.forward(&x, true);
//!     let (_, grad) = mse(&pred, &y);
//!     net.backward(&grad);
//!     opt.step(&mut net);
//!     net.zero_grad();
//! }
//! let pred = net.forward(&x, false);
//! let (loss, _) = mse(&pred, &y);
//! assert!(loss < 0.05, "XOR should be learnable, loss = {loss}");
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod rng;
pub mod tensor3;
pub mod workspace;

pub use matrix::Matrix;
pub use tensor3::Tensor3;
pub use workspace::Workspace;
