//! Rank-3 tensors `(batch, time, features)` for sequence layers.

use crate::matrix::{Matrix, ShapeError};
use serde::{Deserialize, Serialize};

/// A dense `(batch, time, features)` tensor, row-major with `features`
/// fastest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor3 {
    b: usize,
    t: usize,
    f: usize,
    data: Vec<f64>,
}

impl Tensor3 {
    /// Zero tensor of shape `(b, t, f)`.
    pub fn zeros(b: usize, t: usize, f: usize) -> Self {
        Self {
            b,
            t,
            f,
            data: vec![0.0; b * t * f],
        }
    }

    /// Wraps a flat buffer in `(b, t, f)` order.
    pub fn from_vec(b: usize, t: usize, f: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != b * t * f {
            return Err(ShapeError(format!(
                "expected {b}x{t}x{f}={} values, got {}",
                b * t * f,
                data.len()
            )));
        }
        Ok(Self { b, t, f, data })
    }

    /// Lifts a `(batch, time)` matrix into a single-feature sequence
    /// tensor — how per-link volume series enter the LSTM stack.
    pub fn from_matrix_single_feature(m: &Matrix) -> Self {
        Self {
            b: m.rows(),
            t: m.cols(),
            f: 1,
            data: m.as_slice().to_vec(),
        }
    }

    /// Collapses a single-feature tensor back into a `(batch, time)` matrix.
    pub fn to_matrix_single_feature(&self) -> Result<Matrix, ShapeError> {
        if self.f != 1 {
            return Err(ShapeError(format!(
                "expected 1 feature, tensor has {}",
                self.f
            )));
        }
        Matrix::from_vec(self.b, self.t, self.data.clone())
    }

    /// Batch size.
    #[inline]
    pub fn batch(&self) -> usize {
        self.b
    }

    /// Sequence length.
    #[inline]
    pub fn time(&self) -> usize {
        self.t
    }

    /// Feature width.
    #[inline]
    pub fn features(&self) -> usize {
        self.f
    }

    /// `(batch, time, features)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.b, self.t, self.f)
    }

    /// Element access.
    #[inline]
    pub fn get(&self, b: usize, t: usize, f: usize) -> f64 {
        debug_assert!(b < self.b && t < self.t && f < self.f);
        // lint: allow(panic) — bounds checked by the debug_assert above
        self.data[(b * self.t + t) * self.f + f]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, b: usize, t: usize, f: usize, v: f64) {
        debug_assert!(b < self.b && t < self.t && f < self.f);
        // lint: allow(panic) — bounds checked by the debug_assert above
        self.data[(b * self.t + t) * self.f + f] = v;
    }

    /// The feature vector at `(b, t)`.
    #[inline]
    pub fn step(&self, b: usize, t: usize) -> &[f64] {
        debug_assert!(b < self.b && t < self.t);
        let base = (b * self.t + t) * self.f;
        // lint: allow(panic) — bounds checked by the debug_assert above
        &self.data[base..base + self.f]
    }

    /// Mutable feature vector at `(b, t)`.
    #[inline]
    pub fn step_mut(&mut self, b: usize, t: usize) -> &mut [f64] {
        debug_assert!(b < self.b && t < self.t);
        let base = (b * self.t + t) * self.f;
        // lint: allow(panic) — bounds checked by the debug_assert above
        &mut self.data[base..base + self.f]
    }

    /// Extracts time step `t` for all batches as a `(batch, features)`
    /// matrix.
    pub fn time_slice(&self, t: usize) -> Matrix {
        let mut m = Matrix::zeros(self.b, self.f);
        self.read_time_slice(t, &mut m);
        m
    }

    /// [`Self::time_slice`] into a caller-owned `(batch, features)`
    /// matrix (overwritten), for reused step buffers.
    pub fn read_time_slice(&self, t: usize, out: &mut Matrix) {
        assert_eq!(out.rows(), self.b, "time slice batch mismatch");
        assert_eq!(out.cols(), self.f, "time slice feature mismatch");
        for b in 0..self.b {
            out.row_mut(b).copy_from_slice(self.step(b, t));
        }
    }

    /// Writes a `(batch, features)` matrix into time step `t`.
    pub fn set_time_slice(&mut self, t: usize, m: &Matrix) {
        assert_eq!(m.rows(), self.b, "time slice batch mismatch");
        assert_eq!(m.cols(), self.f, "time slice feature mismatch");
        for b in 0..self.b {
            self.step_mut(b, t).copy_from_slice(m.row(b));
        }
    }

    /// Reshapes to `(batch * time, features)` — the view time-distributed
    /// dense layers operate on.
    pub fn flatten_time(&self) -> Matrix {
        Matrix::from_vec(self.b * self.t, self.f, self.data.clone())
            .expect("shape is consistent by construction")
    }

    /// Inverse of [`Self::flatten_time`].
    pub fn unflatten_time(b: usize, t: usize, m: &Matrix) -> Result<Self, ShapeError> {
        if m.rows() != b * t {
            return Err(ShapeError(format!(
                "expected {} rows, got {}",
                b * t,
                m.rows()
            )));
        }
        Self::from_vec(b, t, m.cols(), m.as_slice().to_vec())
    }

    /// Flat view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Consumes the tensor, returning its backing buffer (for the
    /// workspace pool).
    pub(crate) fn into_raw(self) -> Vec<f64> {
        self.data
    }

    /// Builds a `(b, t, f)` zero tensor on top of a recycled buffer,
    /// reusing its capacity.
    pub(crate) fn from_raw(b: usize, t: usize, f: usize, mut buf: Vec<f64>) -> Tensor3 {
        buf.clear();
        buf.resize(b * t * f, 0.0);
        Tensor3 { b, t, f, data: buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor3::zeros(2, 3, 4);
        assert_eq!(t.shape(), (2, 3, 4));
        t.set(1, 2, 3, 7.0);
        assert_eq!(t.get(1, 2, 3), 7.0);
        assert_eq!(t.step(1, 2)[3], 7.0);
        assert!(Tensor3::from_vec(2, 2, 2, vec![0.0; 7]).is_err());
    }

    #[test]
    fn matrix_roundtrip_single_feature() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let t = Tensor3::from_matrix_single_feature(&m);
        assert_eq!(t.shape(), (3, 4, 1));
        assert_eq!(t.get(2, 1, 0), 9.0);
        assert_eq!(t.to_matrix_single_feature().unwrap(), m);
    }

    #[test]
    fn to_matrix_rejects_multi_feature() {
        let t = Tensor3::zeros(1, 2, 3);
        assert!(t.to_matrix_single_feature().is_err());
    }

    #[test]
    fn time_slice_roundtrip() {
        let mut t = Tensor3::zeros(2, 3, 2);
        let m = Matrix::from_fn(2, 2, |r, c| (10 * r + c) as f64 + 1.0);
        t.set_time_slice(1, &m);
        assert_eq!(t.time_slice(1), m);
        assert_eq!(t.time_slice(0), Matrix::zeros(2, 2));
        assert_eq!(t.get(1, 1, 0), 11.0);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let t = Tensor3::from_vec(2, 2, 3, (0..12).map(|v| v as f64).collect()).unwrap();
        let m = t.flatten_time();
        assert_eq!(m.shape(), (4, 3));
        assert_eq!(m.get(3, 2), 11.0);
        let back = Tensor3::unflatten_time(2, 2, &m).unwrap();
        assert_eq!(back, t);
        assert!(Tensor3::unflatten_time(3, 2, &m).is_err());
    }

    #[test]
    fn finiteness() {
        let mut t = Tensor3::zeros(1, 1, 2);
        assert!(t.is_finite());
        t.set(0, 0, 1, f64::INFINITY);
        assert!(!t.is_finite());
    }
}
