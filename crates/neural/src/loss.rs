//! Loss functions.
//!
//! The paper's main loss (Eq. 12) is the summed squared error between
//! predicted and observed link speeds; the auxiliary losses (§IV-E) share
//! the same squared-error form over other quantities. Both reduce to
//! [`mse`] / [`sse`] here.

use crate::matrix::Matrix;
use crate::tensor3::Tensor3;

/// Mean squared error; returns `(loss, d loss / d pred)`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f64;
    let mut grad = pred.clone();
    grad.sub_assign(target);
    let loss = grad.as_slice().iter().map(|v| v * v).sum::<f64>() / n;
    grad.scale(2.0 / n);
    (loss, grad)
}

/// [`mse`] writing the gradient into a caller-provided buffer — same op
/// order, same bits, no allocation. `grad` must match `pred`'s shape.
// lint: hot — the zero-alloc training step's loss kernel
pub fn mse_into(pred: &Matrix, target: &Matrix, grad: &mut Matrix) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    assert_eq!(grad.shape(), pred.shape(), "mse gradient shape mismatch");
    let n = pred.len().max(1) as f64;
    grad.copy_from(pred);
    grad.sub_assign(target);
    let loss = grad.as_slice().iter().map(|v| v * v).sum::<f64>() / n;
    grad.scale(2.0 / n);
    loss
}

/// Summed squared error (the paper's Eq. 12 form); returns
/// `(loss, d loss / d pred)`.
pub fn sse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "sse shape mismatch");
    let mut grad = pred.clone();
    grad.sub_assign(target);
    let loss = grad.as_slice().iter().map(|v| v * v).sum::<f64>();
    grad.scale(2.0);
    (loss, grad)
}

/// Huber loss (mean over cells, squared-error scaling): quadratic inside
/// `delta`, linear outside — robust to residuals the model cannot
/// represent. Returns `(loss, d loss / d pred)`.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f64) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "huber shape mismatch");
    assert!(delta > 0.0, "huber delta must be positive");
    let n = pred.len().max(1) as f64;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0;
    for ((g, &p), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(target.as_slice())
    {
        let r = p - t;
        if r.abs() <= delta {
            loss += r * r;
            *g = 2.0 * r / n;
        } else {
            loss += 2.0 * delta * r.abs() - delta * delta;
            *g = 2.0 * delta * r.signum() / n;
        }
    }
    (loss / n, grad)
}

/// MSE over sequence tensors; returns `(loss, d loss / d pred)`.
pub fn mse_seq(pred: &Tensor3, target: &Tensor3) -> (f64, Tensor3) {
    assert_eq!(pred.shape(), target.shape(), "mse_seq shape mismatch");
    let n = pred.as_slice().len().max(1) as f64;
    let mut grad = pred.clone();
    for (g, &t) in grad.as_mut_slice().iter_mut().zip(target.as_slice()) {
        *g -= t;
    }
    let loss = grad.as_slice().iter().map(|v| v * v).sum::<f64>() / n;
    for g in grad.as_mut_slice() {
        *g *= 2.0 / n;
    }
    (loss, grad)
}

/// [`mse_seq`] writing the gradient into a caller-provided buffer — same
/// op order, same bits, no allocation.
// lint: hot — the zero-alloc training step's loss kernel
pub fn mse_seq_into(pred: &Tensor3, target: &Tensor3, grad: &mut Tensor3) -> f64 {
    assert_eq!(pred.shape(), target.shape(), "mse_seq shape mismatch");
    assert_eq!(
        grad.shape(),
        pred.shape(),
        "mse_seq gradient shape mismatch"
    );
    let n = pred.as_slice().len().max(1) as f64;
    grad.as_mut_slice().copy_from_slice(pred.as_slice());
    for (g, &t) in grad.as_mut_slice().iter_mut().zip(target.as_slice()) {
        *g -= t;
    }
    let loss = grad.as_slice().iter().map(|v| v * v).sum::<f64>() / n;
    for g in grad.as_mut_slice() {
        *g *= 2.0 / n;
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_on_identical() {
        let a = Matrix::filled(2, 3, 1.5);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert_eq!(g.norm(), 0.0);
        let (l, _) = sse(&a, &a);
        assert_eq!(l, 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 3.0]).unwrap();
        let t = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let (l, g) = mse(&p, &t);
        assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        assert_eq!(g.as_slice(), &[1.0, 2.0]); // 2/n * diff
    }

    #[test]
    fn sse_is_n_times_mse() {
        let p = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let t = Matrix::zeros(2, 2);
        let (lm, _) = mse(&p, &t);
        let (ls, _) = sse(&p, &t);
        assert!((ls - 4.0 * lm).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let p = Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.9]).unwrap();
        let t = Matrix::from_vec(1, 3, vec![0.1, 0.1, 0.1]).unwrap();
        let (_, g) = mse(&p, &t);
        let eps = 1e-7;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= eps;
            let num = (mse(&pp, &t).0 - mse(&pm, &t).0) / (2.0 * eps);
            assert!((num - g.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn huber_matches_mse_inside_delta() {
        let p = Matrix::from_vec(1, 3, vec![0.5, -0.2, 0.9]).unwrap();
        let t = Matrix::zeros(1, 3);
        let (lh, gh) = huber(&p, &t, 10.0);
        let (lm, gm) = mse(&p, &t);
        assert!((lh - lm).abs() < 1e-12);
        for (a, b) in gh.as_slice().iter().zip(gm.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn huber_saturates_outside_delta() {
        let t = Matrix::zeros(1, 1);
        let (_, g_small) = huber(&Matrix::filled(1, 1, 5.0), &t, 1.0);
        let (_, g_large) = huber(&Matrix::filled(1, 1, 500.0), &t, 1.0);
        assert!(
            (g_small.get(0, 0) - g_large.get(0, 0)).abs() < 1e-12,
            "gradient magnitude is capped at 2*delta/n"
        );
    }

    #[test]
    fn huber_gradient_matches_finite_difference() {
        let p = Matrix::from_vec(1, 4, vec![0.3, -3.0, 1.2, 7.5]).unwrap();
        let t = Matrix::from_vec(1, 4, vec![0.1, 0.1, 0.1, 0.1]).unwrap();
        let delta = 1.5;
        let (_, g) = huber(&p, &t, delta);
        let eps = 1e-7;
        for i in 0..4 {
            let mut pp = p.clone();
            pp.as_mut_slice()[i] += eps;
            let mut pm = p.clone();
            pm.as_mut_slice()[i] -= eps;
            let num = (huber(&pp, &t, delta).0 - huber(&pm, &t, delta).0) / (2.0 * eps);
            assert!((num - g.as_slice()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn into_variants_are_bit_identical() {
        let p = Matrix::from_vec(2, 2, vec![0.9, -0.3, 2.5, 0.1]).unwrap();
        let t = Matrix::from_vec(2, 2, vec![0.1, 0.2, -1.0, 0.4]).unwrap();
        let (l, g) = mse(&p, &t);
        let mut g2 = Matrix::filled(2, 2, f64::NAN); // dirty buffer
        let l2 = mse_into(&p, &t, &mut g2);
        assert_eq!(l, l2);
        assert_eq!(g.as_slice(), g2.as_slice());

        let ps = Tensor3::from_vec(1, 2, 2, p.as_slice().to_vec()).unwrap();
        let ts = Tensor3::from_vec(1, 2, 2, t.as_slice().to_vec()).unwrap();
        let (ls, gs) = mse_seq(&ps, &ts);
        let mut gs2 = Tensor3::zeros(1, 2, 2);
        gs2.as_mut_slice().fill(f64::NAN);
        let ls2 = mse_seq_into(&ps, &ts, &mut gs2);
        assert_eq!(ls, ls2);
        assert_eq!(gs.as_slice(), gs2.as_slice());
    }

    #[test]
    fn seq_variant_agrees_with_flat() {
        let p = Tensor3::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let t = Tensor3::zeros(1, 2, 2);
        let (l, g) = mse_seq(&p, &t);
        let pm = Matrix::from_vec(2, 2, p.as_slice().to_vec()).unwrap();
        let tm = Matrix::zeros(2, 2);
        let (lf, gf) = mse(&pm, &tm);
        assert!((l - lf).abs() < 1e-12);
        assert_eq!(g.as_slice(), gf.as_slice());
    }
}
