//! Seeded random sources for initialisation and sampling.
//!
//! Wraps `rand::StdRng` and adds the two distributions the workspace needs
//! that `rand` 0.8 does not ship without `rand_distr`: Gaussian samples
//! (Box-Muller) and Poisson counts (Knuth's method), both used by the
//! paper's TOD priors (§IV-B assumes Gaussian priors; §V-B's synthetic
//! patterns include Gaussian and Poisson TOD).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source.
#[derive(Debug, Clone)]
pub struct Rng64 {
    inner: StdRng,
    /// Spare normal sample from the last Box-Muller pair.
    spare: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Derives the seed of the `index`-th independent stream of `master`.
    ///
    /// Used for deterministic parallel generation: work item `k` draws
    /// from `Rng64::for_index(master, k)`, so results do not depend on
    /// the order (or thread) in which items run. For a fixed `master` the
    /// map `index -> seed` is injective — it composes bijections on `u64`
    /// (odd-constant multiply, constant add, SplitMix64 finalizer) — so
    /// distinct indices can never collapse onto one stream.
    pub fn stream_seed(master: u64, index: u64) -> u64 {
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        // Decorrelate the index before folding in the master seed so that
        // nearby (master, index) pairs land far apart.
        let spread = mix(index
            .wrapping_mul(0xA24BAED4963EE407)
            .wrapping_add(0x9E3779B97F4A7C15));
        mix(master.wrapping_add(spread))
    }

    /// Creates the generator for the `index`-th independent stream of
    /// `master` (see [`Rng64::stream_seed`]).
    pub fn for_index(master: u64, index: u64) -> Self {
        Self::new(Self::stream_seed(master, index))
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi > lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample via Box-Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // u1 in (0, 1] so ln is finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Poisson sample with rate `lambda` (Knuth's multiplication method;
    /// adequate for the small rates of the synthetic TOD patterns).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        // For large lambda fall back to a rounded normal approximation to
        // avoid O(lambda) work and underflow of exp(-lambda).
        if lambda > 30.0 {
            let s = self.normal_with(lambda, lambda.sqrt());
            return s.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fills `out` with i.i.d. uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f64], lo: f64, hi: f64) {
        for v in out {
            *v = self.uniform_in(lo, hi);
        }
    }

    /// Fills `out` with i.i.d. standard normal samples.
    pub fn fill_normal(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.normal();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::new(5);
        let mut b = Rng64::new(5);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.normal(), b.normal());
        }
        let mut c = Rng64::new(6);
        assert_ne!(Rng64::new(5).uniform(), c.uniform());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = Rng64::new(1);
        for _ in 0..1000 {
            let v = r.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = Rng64::new(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_with_shifts_and_scales() {
        let mut r = Rng64::new(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal_with(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mut r = Rng64::new(4);
        for &lambda in &[0.5, 3.0, 12.0, 50.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| r.poisson(lambda)).sum::<u64>() as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.1 + 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_degenerate_rates() {
        let mut r = Rng64::new(5);
        assert_eq!(r.poisson(0.0), 0);
        assert_eq!(r.poisson(-3.0), 0);
    }

    #[test]
    fn stream_seeds_are_distinct_and_reproducible() {
        assert_eq!(Rng64::stream_seed(7, 3), Rng64::stream_seed(7, 3));
        assert_ne!(Rng64::stream_seed(7, 3), Rng64::stream_seed(7, 4));
        assert_ne!(Rng64::stream_seed(7, 3), Rng64::stream_seed(8, 3));
        // Index streams differ from the master's own stream.
        let mut base = Rng64::new(7);
        let mut s0 = Rng64::for_index(7, 0);
        assert_ne!(base.uniform(), s0.uniform());
    }

    #[test]
    fn for_index_matches_stream_seed() {
        let mut a = Rng64::for_index(11, 5);
        let mut b = Rng64::new(Rng64::stream_seed(11, 5));
        for _ in 0..10 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn fill_helpers() {
        let mut r = Rng64::new(6);
        let mut buf = [0.0; 16];
        r.fill_uniform(&mut buf, 1.0, 2.0);
        assert!(buf.iter().all(|v| (1.0..2.0).contains(v)));
        r.fill_normal(&mut buf);
        assert!(buf.iter().any(|&v| v != 0.0));
    }
}
