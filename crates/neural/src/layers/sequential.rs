//! Layer containers: flat stacks, sequence stacks and the bridge between
//! them.

use super::{Layer, SeqLayer};
use crate::matrix::Matrix;
use crate::tensor3::Tensor3;
use crate::workspace::Workspace;

/// A stack of [`Layer`]s applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a stack from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        let mut cur = dy.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    fn forward_ws(&mut self, x: &Matrix, train: bool, ws: &mut Workspace) -> Matrix {
        match self.layers.split_first_mut() {
            None => {
                let mut out = ws.take(x.rows(), x.cols());
                out.copy_from(x);
                out
            }
            Some((first, rest)) => {
                let mut cur = first.forward_ws(x, train, ws);
                for l in rest {
                    let next = l.forward_ws(&cur, train, ws);
                    ws.give(cur);
                    cur = next;
                }
                cur
            }
        }
    }

    fn backward_ws(&mut self, dy: &Matrix, ws: &mut Workspace) -> Matrix {
        match self.layers.split_last_mut() {
            None => {
                let mut out = ws.take(dy.rows(), dy.cols());
                out.copy_from(dy);
                out
            }
            Some((last, front)) => {
                let mut cur = last.backward_ws(dy, ws);
                for l in front.iter_mut().rev() {
                    let next = l.backward_ws(&cur, ws);
                    ws.give(cur);
                    cur = next;
                }
                cur
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

/// A stack of [`SeqLayer`]s applied in order.
pub struct SeqSequential {
    layers: Vec<Box<dyn SeqLayer>>,
}

impl SeqSequential {
    /// Creates a stack from boxed sequence layers.
    pub fn new(layers: Vec<Box<dyn SeqLayer>>) -> Self {
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl SeqLayer for SeqSequential {
    fn forward(&mut self, x: &Tensor3, train: bool) -> Tensor3 {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, dy: &Tensor3) -> Tensor3 {
        let mut cur = dy.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    fn forward_ws(&mut self, x: &Tensor3, train: bool, ws: &mut Workspace) -> Tensor3 {
        match self.layers.split_first_mut() {
            None => {
                let (b, t, f) = x.shape();
                let mut out = ws.take3(b, t, f);
                out.as_mut_slice().copy_from_slice(x.as_slice());
                out
            }
            Some((first, rest)) => {
                let mut cur = first.forward_ws(x, train, ws);
                for l in rest {
                    let next = l.forward_ws(&cur, train, ws);
                    ws.give3(cur);
                    cur = next;
                }
                cur
            }
        }
    }

    fn backward_ws(&mut self, dy: &Tensor3, ws: &mut Workspace) -> Tensor3 {
        match self.layers.split_last_mut() {
            None => {
                let (b, t, f) = dy.shape();
                let mut out = ws.take3(b, t, f);
                out.as_mut_slice().copy_from_slice(dy.as_slice());
                out
            }
            Some((last, front)) => {
                let mut cur = last.backward_ws(dy, ws);
                for l in front.iter_mut().rev() {
                    let next = l.backward_ws(&cur, ws);
                    ws.give3(cur);
                    cur = next;
                }
                cur
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

/// Applies a flat [`Layer`] independently at every time step by reshaping
/// `(b, t, f)` to `(b*t, f)` — e.g. the fully connected head after the
/// LSTM stack in the Volume-Speed mapping (Eq. 11).
pub struct TimeDistributed<L: Layer> {
    inner: L,
    shape: Option<(usize, usize)>,
}

impl<L: Layer> TimeDistributed<L> {
    /// Wraps a flat layer.
    pub fn new(inner: L) -> Self {
        Self { inner, shape: None }
    }

    /// The wrapped layer.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

impl<L: Layer> SeqLayer for TimeDistributed<L> {
    fn forward(&mut self, x: &Tensor3, train: bool) -> Tensor3 {
        let (b, t, _) = x.shape();
        self.shape = Some((b, t));
        let y = self.inner.forward(&x.flatten_time(), train);
        Tensor3::unflatten_time(b, t, &y).expect("inner layer preserves row count")
    }

    fn backward(&mut self, dy: &Tensor3) -> Tensor3 {
        let (b, t) = self.shape.expect("backward called before forward");
        let dx = self.inner.backward(&dy.flatten_time());
        Tensor3::unflatten_time(b, t, &dx).expect("inner layer preserves row count")
    }

    fn forward_ws(&mut self, x: &Tensor3, train: bool, ws: &mut Workspace) -> Tensor3 {
        let (b, t, f) = x.shape();
        self.shape = Some((b, t));
        // The flatten/unflatten reshapes become plain copies into pooled
        // buffers; the inner layer sees the identical `(b*t, f)` view.
        let mut flat = ws.take(b * t, f);
        flat.as_mut_slice().copy_from_slice(x.as_slice());
        let y = self.inner.forward_ws(&flat, train, ws);
        ws.give(flat);
        let mut out = ws.take3(b, t, y.cols());
        out.as_mut_slice().copy_from_slice(y.as_slice());
        ws.give(y);
        out
    }

    fn backward_ws(&mut self, dy: &Tensor3, ws: &mut Workspace) -> Tensor3 {
        // lint: allow(panic) — precondition: backward requires a prior forward
        let (b, t) = self.shape.expect("backward called before forward");
        let mut flat = ws.take(b * t, dy.features());
        flat.as_mut_slice().copy_from_slice(dy.as_slice());
        let dx = self.inner.backward_ws(&flat, ws);
        ws.give(flat);
        let mut out = ws.take3(b, t, dx.cols());
        out.as_mut_slice().copy_from_slice(dx.as_slice());
        ws.give(dx);
        out
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.inner.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_input, check_seq_layer_input};
    use crate::layers::{ActKind, Activation, Dense};
    use crate::rng::Rng64;

    #[test]
    fn sequential_composes() {
        let mut rng = Rng64::new(0);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(Activation::new(ActKind::Tanh)),
            Box::new(Dense::new(4, 2, &mut rng)),
        ]);
        let x = Matrix::filled(5, 3, 0.3);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), (5, 2));
        assert_eq!(net.len(), 3);
        assert_eq!(Layer::param_count(&mut net), 3 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn sequential_gradcheck() {
        let mut rng = Rng64::new(1);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(Activation::new(ActKind::Sigmoid)),
            Box::new(Dense::new(4, 2, &mut rng)),
        ]);
        let mut x = Matrix::zeros(4, 3);
        rng.fill_normal(x.as_mut_slice());
        assert!(check_layer_input(&mut net, &x, 1e-6, 1e-6));
    }

    #[test]
    fn time_distributed_matches_flat_application() {
        let mut rng = Rng64::new(2);
        let dense = Dense::new(2, 3, &mut rng);
        let mut td = TimeDistributed::new(dense.clone());
        let mut flat = dense;
        let mut x = Tensor3::zeros(2, 4, 2);
        rng.fill_normal(x.as_mut_slice());
        let y = td.forward(&x, true);
        let y_flat = flat.forward(&x.flatten_time(), true);
        assert_eq!(y.flatten_time(), y_flat);
    }

    #[test]
    fn time_distributed_gradcheck() {
        let mut rng = Rng64::new(3);
        let mut td = TimeDistributed::new(Dense::new(2, 2, &mut rng));
        let mut x = Tensor3::zeros(2, 3, 2);
        rng.fill_normal(x.as_mut_slice());
        assert!(check_seq_layer_input(&mut td, &x, 1e-6, 1e-6));
    }

    #[test]
    fn seq_sequential_composes() {
        let mut rng = Rng64::new(4);
        let mut net = SeqSequential::new(vec![
            Box::new(crate::layers::Conv1d::new(1, 2, 3, &mut rng)),
            Box::new(crate::layers::SeqActivation::new(ActKind::Relu)),
            Box::new(TimeDistributed::new(Dense::new(2, 1, &mut rng))),
        ]);
        let x = Tensor3::zeros(2, 5, 1);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), (2, 5, 1));
        assert_eq!(net.len(), 3);
    }
}
