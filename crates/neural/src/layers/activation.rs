//! Element-wise activation layers.

use super::{Layer, SeqLayer};
use crate::matrix::Matrix;
use crate::tensor3::Tensor3;
use crate::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActKind {
    /// Logistic sigmoid — the paper's choice for the TOD generation stack
    /// (Eqs. 1-2) and the volume-speed head (Table IV).
    Sigmoid,
    /// Rectified linear unit — used by the Route-e convolution stack.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl ActKind {
    /// Applies the function to a scalar.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            ActKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActKind::Relu => x.max(0.0),
            ActKind::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed through the *output* value `y = f(x)`.
    #[inline]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            ActKind::Sigmoid => y * (1.0 - y),
            ActKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActKind::Tanh => 1.0 - y * y,
        }
    }
}

/// Activation over `(batch, features)` matrices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Activation {
    kind: ActKind,
    #[serde(skip)]
    cache_y: Option<Matrix>,
}

impl Activation {
    /// Creates an activation layer.
    pub fn new(kind: ActKind) -> Self {
        Self {
            kind,
            cache_y: None,
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Matrix, _train: bool) -> Matrix {
        let y = x.map(|v| self.kind.apply(v));
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        let y = self
            .cache_y
            .as_ref()
            .expect("backward called before forward");
        let mut dx = dy.clone();
        for (d, &yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *d *= self.kind.derivative_from_output(yv);
        }
        dx
    }

    fn forward_ws(&mut self, x: &Matrix, _train: bool, ws: &mut Workspace) -> Matrix {
        let mut y = ws.take(x.rows(), x.cols());
        for (o, &v) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *o = self.kind.apply(v);
        }
        match &mut self.cache_y {
            Some(c) if c.shape() == y.shape() => c.copy_from(&y),
            // lint: allow(alloc) — cache warm-up only: first step or shape change; steady-state steps hit the copy branch above.
            slot => *slot = Some(y.clone()),
        }
        y
    }

    fn backward_ws(&mut self, dy: &Matrix, ws: &mut Workspace) -> Matrix {
        let y = self
            .cache_y
            .as_ref()
            // lint: allow(panic) — precondition: backward requires a prior forward
            .expect("backward called before forward");
        let mut dx = ws.take(dy.rows(), dy.cols());
        for (o, (&d, &yv)) in dx
            .as_mut_slice()
            .iter_mut()
            .zip(dy.as_slice().iter().zip(y.as_slice()))
        {
            *o = d * self.kind.derivative_from_output(yv);
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}
}

/// Activation over `(batch, time, features)` tensors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeqActivation {
    kind: ActKind,
    #[serde(skip)]
    cache_y: Option<Tensor3>,
}

impl SeqActivation {
    /// Creates a sequence activation layer.
    pub fn new(kind: ActKind) -> Self {
        Self {
            kind,
            cache_y: None,
        }
    }
}

impl SeqLayer for SeqActivation {
    fn forward(&mut self, x: &Tensor3, _train: bool) -> Tensor3 {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            *v = self.kind.apply(*v);
        }
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor3) -> Tensor3 {
        let y = self
            .cache_y
            .as_ref()
            .expect("backward called before forward");
        let mut dx = dy.clone();
        for (d, &yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *d *= self.kind.derivative_from_output(yv);
        }
        dx
    }

    fn forward_ws(&mut self, x: &Tensor3, _train: bool, ws: &mut Workspace) -> Tensor3 {
        let (b, t, f) = x.shape();
        let mut y = ws.take3(b, t, f);
        for (o, &v) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *o = self.kind.apply(v);
        }
        match &mut self.cache_y {
            Some(c) if c.shape() == y.shape() => c.as_mut_slice().copy_from_slice(y.as_slice()),
            // lint: allow(alloc) — cache warm-up only: first step or shape change; steady-state steps hit the copy branch above.
            slot => *slot = Some(y.clone()),
        }
        y
    }

    fn backward_ws(&mut self, dy: &Tensor3, ws: &mut Workspace) -> Tensor3 {
        let y = self
            .cache_y
            .as_ref()
            // lint: allow(panic) — precondition: backward requires a prior forward
            .expect("backward called before forward");
        let (b, t, f) = dy.shape();
        let mut dx = ws.take3(b, t, f);
        for (o, (&d, &yv)) in dx
            .as_mut_slice()
            .iter_mut()
            .zip(dy.as_slice().iter().zip(y.as_slice()))
        {
            *o = d * self.kind.derivative_from_output(yv);
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_input;
    use crate::rng::Rng64;

    #[test]
    fn known_values() {
        assert!((ActKind::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(ActKind::Relu.apply(-3.0), 0.0);
        assert_eq!(ActKind::Relu.apply(2.0), 2.0);
        assert!((ActKind::Tanh.apply(0.0)).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_range() {
        for x in [-50.0, -1.0, 0.0, 1.0, 50.0] {
            let y = ActKind::Sigmoid.apply(x);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng64::new(0);
        let mut x = Matrix::zeros(3, 4);
        rng.fill_normal(x.as_mut_slice());
        // shift relu inputs away from the kink
        let x_relu = x.map(|v| if v.abs() < 0.1 { v + 0.5 } else { v });
        for kind in [ActKind::Sigmoid, ActKind::Tanh] {
            let mut layer = Activation::new(kind);
            assert!(check_layer_input(&mut layer, &x, 1e-6, 1e-7), "{kind:?}");
        }
        let mut relu = Activation::new(ActKind::Relu);
        assert!(check_layer_input(&mut relu, &x_relu, 1e-6, 1e-7));
    }

    #[test]
    fn seq_activation_matches_flat() {
        let mut rng = Rng64::new(1);
        let mut t = Tensor3::zeros(2, 3, 2);
        rng.fill_normal(t.as_mut_slice());
        let mut seq = SeqActivation::new(ActKind::Sigmoid);
        let y = seq.forward(&t, true);
        for (o, i) in y.as_slice().iter().zip(t.as_slice()) {
            assert!((o - ActKind::Sigmoid.apply(*i)).abs() < 1e-12);
        }
        // backward against flat version
        let dy = Tensor3::from_vec(2, 3, 2, vec![1.0; 12]).unwrap();
        let dx = seq.backward(&dy);
        let mut flat = Activation::new(ActKind::Sigmoid);
        let xm = Matrix::from_vec(6, 2, t.as_slice().to_vec()).unwrap();
        flat.forward(&xm, true);
        let dxm = flat.backward(&Matrix::filled(6, 2, 1.0));
        for (a, b) in dx.as_slice().iter().zip(dxm.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
