//! Long short-term memory layer with full backpropagation through time.
//!
//! The paper's Volume-Speed mapping stacks two LSTMs and a fully connected
//! head, shared across all links (§IV-D, Eqs. 9-11). The LSTM baseline of
//! §V-F reuses this layer as well.

use super::{xavier, SeqLayer};
use crate::matrix::Matrix;
use crate::rng::Rng64;
use crate::tensor3::Tensor3;
use serde::{Deserialize, Serialize};

/// A standard LSTM: `(b, t, in) -> (b, t, hidden)`, zero initial state,
/// gate order `[input, forget, cell, output]`, forget-gate bias
/// initialised to +1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    input: usize,
    hidden: usize,
    /// `(in, 4H)`
    wx: Matrix,
    /// `(H, 4H)`
    wh: Matrix,
    /// `(1, 4H)`
    b: Matrix,
    dwx: Matrix,
    dwh: Matrix,
    db: Matrix,
    #[serde(skip)]
    cache: Option<LstmCache>,
}

#[derive(Debug, Clone)]
struct LstmCache {
    /// Per time step: x_t.
    xs: Vec<Matrix>,
    /// h_{t-1} entering each step (h_0 = 0 first).
    h_prevs: Vec<Matrix>,
    /// c_{t-1} entering each step.
    c_prevs: Vec<Matrix>,
    /// Gate activations per step: (i, f, g, o).
    gates: Vec<(Matrix, Matrix, Matrix, Matrix)>,
    /// tanh(c_t) per step.
    tanh_cs: Vec<Matrix>,
}

impl Lstm {
    /// Creates a Xavier-initialised LSTM.
    pub fn new(input: usize, hidden: usize, rng: &mut Rng64) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        // Forget-gate bias +1: standard initialisation that avoids
        // vanishing memory early in training.
        for h in 0..hidden {
            b.set(0, hidden + h, 1.0);
        }
        Self {
            input,
            hidden,
            wx: xavier(input, 4 * hidden, rng),
            wh: xavier(hidden, 4 * hidden, rng),
            b,
            dwx: Matrix::zeros(input, 4 * hidden),
            dwh: Matrix::zeros(hidden, 4 * hidden),
            db: Matrix::zeros(1, 4 * hidden),
            cache: None,
        }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl SeqLayer for Lstm {
    fn forward(&mut self, x: &Tensor3, _train: bool) -> Tensor3 {
        let (batch, time, feat) = x.shape();
        assert_eq!(feat, self.input, "LSTM input width mismatch");
        let h = self.hidden;
        let mut out = Tensor3::zeros(batch, time, h);
        let mut h_t = Matrix::zeros(batch, h);
        let mut c_t = Matrix::zeros(batch, h);
        let mut cache = LstmCache {
            xs: Vec::with_capacity(time),
            h_prevs: Vec::with_capacity(time),
            c_prevs: Vec::with_capacity(time),
            gates: Vec::with_capacity(time),
            tanh_cs: Vec::with_capacity(time),
        };
        for t in 0..time {
            let x_t = x.time_slice(t);
            let mut a = x_t.matmul(&self.wx);
            a.add_assign(&h_t.matmul(&self.wh));
            a.add_row_broadcast(&self.b);

            let mut i_g = Matrix::zeros(batch, h);
            let mut f_g = Matrix::zeros(batch, h);
            let mut g_g = Matrix::zeros(batch, h);
            let mut o_g = Matrix::zeros(batch, h);
            for bi in 0..batch {
                // The pre-activation row is laid out [i | f | g | o], each
                // block `h` wide; split it so each gate reads its own slice.
                let (a_i, rest) = a.row(bi).split_at(h);
                let (a_f, rest) = rest.split_at(h);
                let (a_g, a_o) = rest.split_at(h);
                for (hi, (((&vi, &vf), &vg), &vo)) in
                    a_i.iter().zip(a_f).zip(a_g).zip(a_o).enumerate()
                {
                    i_g.set(bi, hi, sigmoid(vi));
                    f_g.set(bi, hi, sigmoid(vf));
                    g_g.set(bi, hi, vg.tanh());
                    o_g.set(bi, hi, sigmoid(vo));
                }
            }

            cache.h_prevs.push(h_t.clone());
            cache.c_prevs.push(c_t.clone());

            // c_t = f * c_{t-1} + i * g
            let mut c_new = f_g.hadamard(&c_t);
            c_new.add_assign(&i_g.hadamard(&g_g));
            let tanh_c = c_new.map(f64::tanh);
            // h_t = o * tanh(c_t)
            let h_new = o_g.hadamard(&tanh_c);

            out.set_time_slice(t, &h_new);
            cache.xs.push(x_t);
            cache.gates.push((i_g, f_g, g_g, o_g));
            cache.tanh_cs.push(tanh_c);
            h_t = h_new;
            c_t = c_new;
        }
        self.cache = Some(cache);
        out
    }

    fn backward(&mut self, dy: &Tensor3) -> Tensor3 {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let time = cache.xs.len();
        let batch = dy.batch();
        let h = self.hidden;
        assert_eq!(dy.features(), h, "LSTM upstream gradient width mismatch");

        let mut dx = Tensor3::zeros(batch, time, self.input);
        let mut dh_next = Matrix::zeros(batch, h);
        let mut dc_next = Matrix::zeros(batch, h);

        let steps = cache
            .gates
            .iter()
            .zip(&cache.tanh_cs)
            .zip(&cache.c_prevs)
            .zip(&cache.h_prevs)
            .zip(&cache.xs)
            .enumerate()
            .rev();
        for (t, ((((gates, tanh_c), c_prev), h_prev), x_t)) in steps {
            let (i_g, f_g, g_g, o_g) = gates;

            // dh = dy_t + dh carried from t+1
            let mut dh = dy.time_slice(t);
            dh.add_assign(&dh_next);

            // dc = dh * o * (1 - tanh_c^2) + dc carried
            let mut dc = dh.hadamard(o_g);
            for (v, &tc) in dc.as_mut_slice().iter_mut().zip(tanh_c.as_slice()) {
                *v *= 1.0 - tc * tc;
            }
            dc.add_assign(&dc_next);

            // Gate pre-activation gradients.
            let mut da = Matrix::zeros(batch, 4 * h);
            for bi in 0..batch {
                for hi in 0..h {
                    let dhv = dh.get(bi, hi);
                    let dcv = dc.get(bi, hi);
                    let iv = i_g.get(bi, hi);
                    let fv = f_g.get(bi, hi);
                    let gv = g_g.get(bi, hi);
                    let ov = o_g.get(bi, hi);
                    let tc = tanh_c.get(bi, hi);
                    // do
                    da.set(bi, 3 * h + hi, dhv * tc * ov * (1.0 - ov));
                    // di
                    da.set(bi, hi, dcv * gv * iv * (1.0 - iv));
                    // df
                    da.set(bi, h + hi, dcv * c_prev.get(bi, hi) * fv * (1.0 - fv));
                    // dg
                    da.set(bi, 2 * h + hi, dcv * iv * (1.0 - gv * gv));
                }
            }

            self.dwx.add_assign(&x_t.matmul_at_b(&da));
            self.dwh.add_assign(&h_prev.matmul_at_b(&da));
            self.db.add_assign(&da.sum_rows());

            dx.set_time_slice(t, &da.matmul_a_bt(&self.wx));
            dh_next = da.matmul_a_bt(&self.wh);
            dc_next = dc.hadamard(f_g);
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.wx, &mut self.dwx);
        f(&mut self.wh, &mut self.dwh);
        f(&mut self.b, &mut self.db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_seq_layer_input, check_seq_layer_params};
    use crate::layers::SeqLayer;

    #[test]
    fn output_shape_and_finiteness() {
        let mut rng = Rng64::new(0);
        let mut l = Lstm::new(2, 5, &mut rng);
        let mut x = Tensor3::zeros(3, 7, 2);
        rng.fill_normal(x.as_mut_slice());
        let y = l.forward(&x, true);
        assert_eq!(y.shape(), (3, 7, 5));
        assert!(y.is_finite());
        // hidden states stay in (-1, 1): h = o * tanh(c)
        assert!(y.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_input_zero_bias_gives_near_zero_output() {
        let mut rng = Rng64::new(0);
        let mut l = Lstm::new(1, 3, &mut rng);
        l.b.fill_zero(); // remove forget bias for this test
        let x = Tensor3::zeros(2, 4, 1);
        let y = l.forward(&x, true);
        // gates are sigmoid(0)=0.5, tanh(0)=0 -> c stays 0 -> h stays 0
        assert!(y.as_slice().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng64::new(1);
        let mut l = Lstm::new(2, 4, &mut rng);
        let mut x = Tensor3::zeros(2, 5, 2);
        rng.fill_normal(x.as_mut_slice());
        assert!(check_seq_layer_input(&mut l, &x, 1e-6, 1e-6));
        assert!(check_seq_layer_params(&mut l, &x, 1e-6, 1e-6));
    }

    #[test]
    fn memory_carries_information_forward() {
        // An impulse at t=0 must influence the output at later steps.
        let mut rng = Rng64::new(2);
        let mut l = Lstm::new(1, 4, &mut rng);
        let mut x0 = Tensor3::zeros(1, 6, 1);
        let x1 = Tensor3::zeros(1, 6, 1);
        x0.set(0, 0, 0, 5.0);
        let y0 = l.forward(&x0, true);
        let y1 = l.forward(&x1, true);
        let diff_late: f64 = (0..4)
            .map(|h| (y0.get(0, 5, h) - y1.get(0, 5, h)).abs())
            .sum();
        assert!(diff_late > 1e-6, "impulse must persist through memory");
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = Rng64::new(0);
        let l = Lstm::new(1, 3, &mut rng);
        for h in 0..3 {
            assert_eq!(l.b.get(0, 3 + h), 1.0);
            assert_eq!(l.b.get(0, h), 0.0);
        }
    }
}
