//! Long short-term memory layer with full backpropagation through time.
//!
//! The paper's Volume-Speed mapping stacks two LSTMs and a fully connected
//! head, shared across all links (§IV-D, Eqs. 9-11). The LSTM baseline of
//! §V-F reuses this layer as well.

use super::{xavier, SeqLayer};
use crate::matrix::Matrix;
use crate::rng::Rng64;
use crate::tensor3::Tensor3;
use crate::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// A standard LSTM: `(b, t, in) -> (b, t, hidden)`, zero initial state,
/// gate order `[input, forget, cell, output]`, forget-gate bias
/// initialised to +1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    input: usize,
    hidden: usize,
    /// `(in, 4H)`
    wx: Matrix,
    /// `(H, 4H)`
    wh: Matrix,
    /// `(1, 4H)`
    b: Matrix,
    dwx: Matrix,
    dwh: Matrix,
    db: Matrix,
    #[serde(skip)]
    state: Option<LstmState>,
}

/// Forward cache plus scratch buffers, kept across calls and reused in
/// place whenever the `(batch, time)` shape repeats — so steady-state
/// training steps never allocate. Every field is fully overwritten by
/// each forward/backward pass, making reuse numerically invisible.
#[derive(Debug, Clone)]
struct LstmState {
    batch: usize,
    time: usize,
    /// Per time step: x_t.
    xs: Vec<Matrix>,
    /// h_{t-1} entering each step (h_0 = 0 first).
    h_prevs: Vec<Matrix>,
    /// c_{t-1} entering each step.
    c_prevs: Vec<Matrix>,
    /// Gate activations per step: (i, f, g, o).
    gates: Vec<(Matrix, Matrix, Matrix, Matrix)>,
    /// tanh(c_t) per step.
    tanh_cs: Vec<Matrix>,
    /// Pre-activation scratch `(batch, 4H)`.
    a: Matrix,
    /// Scratch for `h_{t-1} @ wh`.
    ah: Matrix,
    /// Running hidden state.
    h_cur: Matrix,
    /// Running cell state.
    c_cur: Matrix,
    /// Backward scratch: dh, dc, gate pre-activation gradient, gradient
    /// temporaries, per-step input gradient, and the carried dh/dc.
    dh: Matrix,
    dc: Matrix,
    da: Matrix,
    dwx_t: Matrix,
    dwh_t: Matrix,
    db_t: Matrix,
    dxa: Matrix,
    dh_next: Matrix,
    dc_next: Matrix,
    /// `wx^T`, refreshed at each backward entry: `da @ wx^T` runs as the
    /// fast `matmul(da, wx^T)` kernel with bit-identical results.
    wxt: Matrix,
    /// `wh^T`, same role for the hidden-to-hidden weights.
    wht: Matrix,
}

impl LstmState {
    // lint: cold — state is (re)built only when the batch/time shape changes, never in the steady-state loop
    fn new(batch: usize, time: usize, input: usize, hidden: usize) -> Self {
        let m = |r, c| Matrix::zeros(r, c);
        Self {
            batch,
            time,
            xs: (0..time).map(|_| m(batch, input)).collect(),
            h_prevs: (0..time).map(|_| m(batch, hidden)).collect(),
            c_prevs: (0..time).map(|_| m(batch, hidden)).collect(),
            gates: (0..time)
                .map(|_| {
                    (
                        m(batch, hidden),
                        m(batch, hidden),
                        m(batch, hidden),
                        m(batch, hidden),
                    )
                })
                .collect(),
            tanh_cs: (0..time).map(|_| m(batch, hidden)).collect(),
            a: m(batch, 4 * hidden),
            ah: m(batch, 4 * hidden),
            h_cur: m(batch, hidden),
            c_cur: m(batch, hidden),
            dh: m(batch, hidden),
            dc: m(batch, hidden),
            da: m(batch, 4 * hidden),
            dwx_t: m(input, 4 * hidden),
            dwh_t: m(hidden, 4 * hidden),
            db_t: m(1, 4 * hidden),
            dxa: m(batch, input),
            dh_next: m(batch, hidden),
            dc_next: m(batch, hidden),
            wxt: m(4 * hidden, input),
            wht: m(4 * hidden, hidden),
        }
    }
}

impl Lstm {
    /// Creates a Xavier-initialised LSTM.
    pub fn new(input: usize, hidden: usize, rng: &mut Rng64) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        // Forget-gate bias +1: standard initialisation that avoids
        // vanishing memory early in training.
        for h in 0..hidden {
            b.set(0, hidden + h, 1.0);
        }
        Self {
            input,
            hidden,
            wx: xavier(input, 4 * hidden, rng),
            wh: xavier(hidden, 4 * hidden, rng),
            b,
            dwx: Matrix::zeros(input, 4 * hidden),
            dwh: Matrix::zeros(hidden, 4 * hidden),
            db: Matrix::zeros(1, 4 * hidden),
            state: None,
        }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Returns the cached state, rebuilding it when the shape changed.
    fn ensure_state(
        state: &mut Option<LstmState>,
        batch: usize,
        time: usize,
        input: usize,
        hidden: usize,
    ) -> &mut LstmState {
        let fits = state
            .as_ref()
            .is_some_and(|s| s.batch == batch && s.time == time);
        if !fits {
            *state = None;
        }
        state.get_or_insert_with(|| LstmState::new(batch, time, input, hidden))
    }

    fn forward_into(&mut self, x: &Tensor3, out: &mut Tensor3) {
        let (batch, time, feat) = x.shape();
        assert_eq!(feat, self.input, "LSTM input width mismatch");
        assert_eq!(
            out.shape(),
            (batch, time, self.hidden),
            "LSTM output shape mismatch"
        );
        let h = self.hidden;
        let Self {
            input,
            hidden,
            wx,
            wh,
            b,
            state,
            ..
        } = self;
        let LstmState {
            xs,
            h_prevs,
            c_prevs,
            gates,
            tanh_cs,
            a,
            ah,
            h_cur,
            c_cur,
            ..
        } = Self::ensure_state(state, batch, time, *input, *hidden);
        h_cur.fill_zero();
        c_cur.fill_zero();
        let steps = xs
            .iter_mut()
            .zip(h_prevs.iter_mut())
            .zip(c_prevs.iter_mut())
            .zip(gates.iter_mut())
            .zip(tanh_cs.iter_mut())
            .enumerate();
        for (t, ((((x_t, h_prev), c_prev), gates_t), tanh_c)) in steps {
            x.read_time_slice(t, x_t);
            // a = x_t @ wx + h_{t-1} @ wh + b — same matmul/add sequence
            // (and therefore the same bits) as the allocating path.
            x_t.matmul_into(wx, a);
            h_cur.matmul_into(wh, ah);
            a.add_assign(ah);
            a.add_row_broadcast(b);

            let (i_g, f_g, g_g, o_g) = gates_t;
            let rows = a
                .as_slice()
                .chunks_exact(4 * h)
                .zip(i_g.as_mut_slice().chunks_exact_mut(h))
                .zip(f_g.as_mut_slice().chunks_exact_mut(h))
                .zip(g_g.as_mut_slice().chunks_exact_mut(h))
                .zip(o_g.as_mut_slice().chunks_exact_mut(h));
            for ((((a_row, ir), fr), gr), or) in rows {
                // The pre-activation row is laid out [i | f | g | o], each
                // block `h` wide; split it so each gate reads its own slice.
                let (a_i, rest) = a_row.split_at(h);
                let (a_f, rest) = rest.split_at(h);
                let (a_g, a_o) = rest.split_at(h);
                let cells = a_i
                    .iter()
                    .zip(ir.iter_mut())
                    .zip(a_f.iter().zip(fr.iter_mut()))
                    .zip(a_g.iter().zip(gr.iter_mut()))
                    .zip(a_o.iter().zip(or.iter_mut()));
                for ((((&vi, ig), (&vf, fg)), (&vg, gg)), (&vo, og)) in cells {
                    *ig = sigmoid(vi);
                    *fg = sigmoid(vf);
                    *gg = vg.tanh();
                    *og = sigmoid(vo);
                }
            }

            h_prev.copy_from(h_cur);
            c_prev.copy_from(c_cur);

            // c_t = f * c_{t-1} + i * g, in place: c_{t-1} was saved above
            // and each element is (f*c) + (i*g), the exact op order of the
            // hadamard + add_assign formulation.
            for ((cv, &fv), (&iv, &gv)) in c_cur
                .as_mut_slice()
                .iter_mut()
                .zip(f_g.as_slice())
                .zip(i_g.as_slice().iter().zip(g_g.as_slice()))
            {
                *cv = fv * *cv + iv * gv;
            }
            for (tc, &cv) in tanh_c.as_mut_slice().iter_mut().zip(c_cur.as_slice()) {
                *tc = cv.tanh();
            }
            // h_t = o * tanh(c_t)
            for ((hv, &ov), &tc) in h_cur
                .as_mut_slice()
                .iter_mut()
                .zip(o_g.as_slice())
                .zip(tanh_c.as_slice())
            {
                *hv = ov * tc;
            }
            out.set_time_slice(t, h_cur);
        }
    }

    fn backward_into(&mut self, dy: &Tensor3, dx: &mut Tensor3) {
        let h = self.hidden;
        assert_eq!(dy.features(), h, "LSTM upstream gradient width mismatch");
        let Self {
            wx,
            wh,
            dwx,
            dwh,
            db,
            state,
            ..
        } = self;
        let LstmState {
            batch,
            time,
            xs,
            h_prevs,
            c_prevs,
            gates,
            tanh_cs,
            dh,
            dc,
            da,
            dwx_t,
            dwh_t,
            db_t,
            dxa,
            dh_next,
            dc_next,
            wxt,
            wht,
            ..
            // lint: allow(panic) — precondition: backward requires a prior forward
        } = state.as_mut().expect("backward called before forward");
        let (batch, time) = (*batch, *time);
        // Weight transposes once per backward call (they're step-constant):
        // `matmul(da, w^T)` below replaces `matmul_a_bt(da, w)` — identical
        // terms in identical order, roughly double the throughput.
        wx.transpose_into(wxt);
        wh.transpose_into(wht);
        assert_eq!(dy.batch(), batch, "LSTM upstream gradient batch mismatch");
        assert_eq!(
            dx.shape(),
            (batch, time, wx.rows()),
            "LSTM input gradient shape mismatch"
        );
        dh_next.fill_zero();
        dc_next.fill_zero();
        let steps = xs
            .iter()
            .zip(h_prevs.iter())
            .zip(c_prevs.iter())
            .zip(gates.iter())
            .zip(tanh_cs.iter())
            .enumerate()
            .rev();
        for (t, ((((x_t, h_prev), c_prev), gates_t), tanh_c)) in steps {
            let (i_g, f_g, g_g, o_g) = gates_t;

            // dh = dy_t + dh carried from t+1
            dy.read_time_slice(t, dh);
            dh.add_assign(dh_next);

            // dc = dh * o * (1 - tanh_c^2) + dc carried — fused, but each
            // element follows the identical ((dh*o)*(1-tc^2))+carry chain.
            for ((dcv, (&dhv, &ov)), (&tc, &dnv)) in dc
                .as_mut_slice()
                .iter_mut()
                .zip(dh.as_slice().iter().zip(o_g.as_slice()))
                .zip(tanh_c.as_slice().iter().zip(dc_next.as_slice()))
            {
                *dcv = ((dhv * ov) * (1.0 - tc * tc)) + dnv;
            }

            // Gate pre-activation gradients; every column of `da` is
            // rewritten so the scratch needs no zeroing.
            let rows = dh
                .as_slice()
                .chunks_exact(h)
                .zip(dc.as_slice().chunks_exact(h))
                .zip(
                    i_g.as_slice()
                        .chunks_exact(h)
                        .zip(f_g.as_slice().chunks_exact(h)),
                )
                .zip(
                    g_g.as_slice()
                        .chunks_exact(h)
                        .zip(o_g.as_slice().chunks_exact(h)),
                )
                .zip(
                    tanh_c
                        .as_slice()
                        .chunks_exact(h)
                        .zip(c_prev.as_slice().chunks_exact(h)),
                )
                .zip(da.as_mut_slice().chunks_exact_mut(4 * h));
            for (((((dhr, dcr), (ir, fr)), (gr, or)), (tcr, cpr)), dar) in rows {
                let (da_i, rest) = dar.split_at_mut(h);
                let (da_f, rest) = rest.split_at_mut(h);
                let (da_g, da_o) = rest.split_at_mut(h);
                let cells = dhr
                    .iter()
                    .zip(dcr)
                    .zip(ir.iter().zip(fr))
                    .zip(gr.iter().zip(or))
                    .zip(tcr.iter().zip(cpr))
                    .zip(da_i.iter_mut().zip(da_f.iter_mut()))
                    .zip(da_g.iter_mut().zip(da_o.iter_mut()));
                for (
                    (((((&dhv, &dcv), (&iv, &fv)), (&gv, &ov)), (&tcv, &cpv)), (dai, daf)),
                    (dag, dao),
                ) in cells
                {
                    *dao = dhv * tcv * ov * (1.0 - ov);
                    *dai = dcv * gv * iv * (1.0 - iv);
                    *daf = dcv * cpv * fv * (1.0 - fv);
                    *dag = dcv * iv * (1.0 - gv * gv);
                }
            }

            // Accumulate via scratch + add_assign to keep the sum order of
            // the allocating path.
            x_t.matmul_at_b_into(da, dwx_t);
            dwx.add_assign(dwx_t);
            h_prev.matmul_at_b_into(da, dwh_t);
            dwh.add_assign(dwh_t);
            da.sum_rows_into(db_t);
            db.add_assign(db_t);

            da.matmul_into(wxt, dxa);
            dx.set_time_slice(t, dxa);
            da.matmul_into(wht, dh_next);
            // dc carried to t-1: dc * f
            for ((dnv, &dcv), &fv) in dc_next
                .as_mut_slice()
                .iter_mut()
                .zip(dc.as_slice())
                .zip(f_g.as_slice())
            {
                *dnv = dcv * fv;
            }
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl SeqLayer for Lstm {
    fn forward(&mut self, x: &Tensor3, _train: bool) -> Tensor3 {
        let (batch, time, _) = x.shape();
        let mut out = Tensor3::zeros(batch, time, self.hidden);
        self.forward_into(x, &mut out);
        out
    }

    fn backward(&mut self, dy: &Tensor3) -> Tensor3 {
        let (batch, time) = {
            // lint: allow(panic) — precondition: backward requires a prior forward
            let st = self.state.as_ref().expect("backward called before forward");
            (st.batch, st.time)
        };
        let mut dx = Tensor3::zeros(batch, time, self.input);
        self.backward_into(dy, &mut dx);
        dx
    }

    fn forward_ws(&mut self, x: &Tensor3, _train: bool, ws: &mut Workspace) -> Tensor3 {
        let (batch, time, _) = x.shape();
        let mut out = ws.take3(batch, time, self.hidden);
        self.forward_into(x, &mut out);
        out
    }

    fn backward_ws(&mut self, dy: &Tensor3, ws: &mut Workspace) -> Tensor3 {
        let (batch, time) = {
            // lint: allow(panic) — precondition: backward requires a prior forward
            let st = self.state.as_ref().expect("backward called before forward");
            (st.batch, st.time)
        };
        let mut dx = ws.take3(batch, time, self.input);
        self.backward_into(dy, &mut dx);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.wx, &mut self.dwx);
        f(&mut self.wh, &mut self.dwh);
        f(&mut self.b, &mut self.db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_seq_layer_input, check_seq_layer_params};
    use crate::layers::SeqLayer;

    #[test]
    fn output_shape_and_finiteness() {
        let mut rng = Rng64::new(0);
        let mut l = Lstm::new(2, 5, &mut rng);
        let mut x = Tensor3::zeros(3, 7, 2);
        rng.fill_normal(x.as_mut_slice());
        let y = l.forward(&x, true);
        assert_eq!(y.shape(), (3, 7, 5));
        assert!(y.is_finite());
        // hidden states stay in (-1, 1): h = o * tanh(c)
        assert!(y.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_input_zero_bias_gives_near_zero_output() {
        let mut rng = Rng64::new(0);
        let mut l = Lstm::new(1, 3, &mut rng);
        l.b.fill_zero(); // remove forget bias for this test
        let x = Tensor3::zeros(2, 4, 1);
        let y = l.forward(&x, true);
        // gates are sigmoid(0)=0.5, tanh(0)=0 -> c stays 0 -> h stays 0
        assert!(y.as_slice().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng64::new(1);
        let mut l = Lstm::new(2, 4, &mut rng);
        let mut x = Tensor3::zeros(2, 5, 2);
        rng.fill_normal(x.as_mut_slice());
        assert!(check_seq_layer_input(&mut l, &x, 1e-6, 1e-6));
        assert!(check_seq_layer_params(&mut l, &x, 1e-6, 1e-6));
    }

    #[test]
    fn memory_carries_information_forward() {
        // An impulse at t=0 must influence the output at later steps.
        let mut rng = Rng64::new(2);
        let mut l = Lstm::new(1, 4, &mut rng);
        let mut x0 = Tensor3::zeros(1, 6, 1);
        let x1 = Tensor3::zeros(1, 6, 1);
        x0.set(0, 0, 0, 5.0);
        let y0 = l.forward(&x0, true);
        let y1 = l.forward(&x1, true);
        let diff_late: f64 = (0..4)
            .map(|h| (y0.get(0, 5, h) - y1.get(0, 5, h)).abs())
            .sum();
        assert!(diff_late > 1e-6, "impulse must persist through memory");
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = Rng64::new(0);
        let l = Lstm::new(1, 3, &mut rng);
        for h in 0..3 {
            assert_eq!(l.b.get(0, 3 + h), 1.0);
            assert_eq!(l.b.get(0, h), 0.0);
        }
    }
}
