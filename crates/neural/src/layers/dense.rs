//! Fully-connected layer.

use super::{xavier, Layer};
use crate::matrix::Matrix;
use crate::rng::Rng64;
use crate::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// `y = x @ W + b` with `W: (in, out)`, `b: (1, out)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
    dw: Matrix,
    db: Matrix,
    #[serde(skip)]
    cache_x: Option<Matrix>,
}

impl Dense {
    /// Creates a Xavier-initialised layer.
    pub fn new(input: usize, output: usize, rng: &mut Rng64) -> Self {
        Self {
            w: xavier(input, output, rng),
            b: Matrix::zeros(1, output),
            dw: Matrix::zeros(input, output),
            db: Matrix::zeros(1, output),
            cache_x: None,
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.w.cols()
    }

    /// Immutable access to the weight (testing / inspection).
    pub fn weight(&self) -> &Matrix {
        &self.w
    }

    /// Immutable access to the bias.
    pub fn bias(&self) -> &Matrix {
        &self.b
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Matrix, _train: bool) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self
            .cache_x
            .as_ref()
            .expect("backward called before forward");
        self.dw.add_assign(&x.matmul_at_b(dy));
        self.db.add_assign(&dy.sum_rows());
        // dy @ W^T via an explicit transpose: the plain matmul kernel is
        // about twice as fast and sums the same terms in the same order.
        dy.matmul(&self.w.transpose())
    }

    fn forward_ws(&mut self, x: &Matrix, _train: bool, ws: &mut Workspace) -> Matrix {
        let mut y = ws.take(x.rows(), self.w.cols());
        x.matmul_into(&self.w, &mut y);
        y.add_row_broadcast(&self.b);
        // Reuse the cached-input buffer across steps when the batch shape
        // is stable (the common case in training loops).
        match &mut self.cache_x {
            Some(c) if c.shape() == x.shape() => c.copy_from(x),
            // lint: allow(alloc) — cache warm-up only: first step or shape change; steady-state steps hit the copy branch above.
            slot => *slot = Some(x.clone()),
        }
        y
    }

    fn backward_ws(&mut self, dy: &Matrix, ws: &mut Workspace) -> Matrix {
        let x = self
            .cache_x
            .as_ref()
            // lint: allow(panic) — precondition: backward requires a prior forward
            .expect("backward called before forward");
        // Gradients accumulate via an explicit temporary + add_assign so
        // the sum order (and therefore the bits) match `backward`.
        let mut dw_t = ws.take(self.w.rows(), self.w.cols());
        x.matmul_at_b_into(dy, &mut dw_t);
        self.dw.add_assign(&dw_t);
        ws.give(dw_t);
        let mut db_t = ws.take(1, self.w.cols());
        dy.sum_rows_into(&mut db_t);
        self.db.add_assign(&db_t);
        ws.give(db_t);
        let mut wt = ws.take(self.w.cols(), self.w.rows());
        self.w.transpose_into(&mut wt);
        let mut dx = ws.take(dy.rows(), self.w.rows());
        dy.matmul_into(&wt, &mut dx);
        ws.give(wt);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_layer_input, check_layer_params};

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Rng64::new(0);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Matrix::zeros(4, 3);
        let y = d.forward(&x, true);
        assert_eq!(y.shape(), (4, 2));
        // zero input -> output equals bias (zero at init)
        assert_eq!(y, Matrix::zeros(4, 2));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng64::new(1);
        let mut d = Dense::new(4, 3, &mut rng);
        let mut x = Matrix::zeros(5, 4);
        rng.fill_normal(x.as_mut_slice());
        assert!(check_layer_input(&mut d, &x, 1e-6, 1e-6));
        assert!(check_layer_params(&mut d, &x, 1e-6, 1e-6));
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = Rng64::new(2);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Matrix::filled(1, 2, 1.0);
        let dy = Matrix::filled(1, 2, 1.0);
        d.forward(&x, true);
        d.backward(&dy);
        let mut first = Matrix::zeros(0, 0);
        d.visit_params(&mut |p, g| {
            if p.rows() == 2 {
                first = g.clone();
            }
        });
        d.forward(&x, true);
        d.backward(&dy);
        d.visit_params(&mut |p, g| {
            if p.rows() == 2 {
                for (a, b) in g.as_slice().iter().zip(first.as_slice()) {
                    assert!((a - 2.0 * b).abs() < 1e-12, "grads must accumulate");
                }
            }
        });
        d.zero_grad();
        d.visit_params(&mut |_, g| assert_eq!(g.norm(), 0.0));
    }

    #[test]
    fn serde_round_trip_preserves_weights() {
        let mut rng = Rng64::new(3);
        let d = Dense::new(3, 3, &mut rng);
        let json = serde_json::to_string(&d).unwrap();
        let back: Dense = serde_json::from_str(&json).unwrap();
        assert_eq!(back.weight(), d.weight());
        assert_eq!(back.bias(), d.bias());
    }
}
