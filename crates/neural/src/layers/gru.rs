//! Gated recurrent unit with full backpropagation through time.
//!
//! Provided as a drop-in alternative to [`super::Lstm`] for the
//! Volume-Speed mapping and the sequence baselines (fewer parameters, a
//! common ablation choice). Formulation (Cho et al. 2014):
//!
//! ```text
//! z_t = sigmoid(x_t Wxz + h_{t-1} Whz + bz)      (update gate)
//! r_t = sigmoid(x_t Wxr + h_{t-1} Whr + br)      (reset gate)
//! n_t = tanh(x_t Wxn + (r_t .* h_{t-1}) Whn + bn)
//! h_t = (1 - z_t) .* n_t + z_t .* h_{t-1}
//! ```

use super::{xavier, SeqLayer};
use crate::matrix::Matrix;
use crate::rng::Rng64;
use crate::tensor3::Tensor3;
use serde::{Deserialize, Serialize};

/// A standard GRU: `(b, t, in) -> (b, t, hidden)`, zero initial state.
/// Gate blocks are ordered `[z, r, n]` inside the stacked weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gru {
    input: usize,
    hidden: usize,
    /// `(in, 3H)`
    wx: Matrix,
    /// `(H, 3H)`
    wh: Matrix,
    /// `(1, 3H)`
    b: Matrix,
    dwx: Matrix,
    dwh: Matrix,
    db: Matrix,
    #[serde(skip)]
    cache: Option<GruCache>,
}

#[derive(Debug, Clone)]
struct GruCache {
    xs: Vec<Matrix>,
    h_prevs: Vec<Matrix>,
    /// Per step: (z, r, n).
    gates: Vec<(Matrix, Matrix, Matrix)>,
}

impl Gru {
    /// Creates a Xavier-initialised GRU.
    pub fn new(input: usize, hidden: usize, rng: &mut Rng64) -> Self {
        Self {
            input,
            hidden,
            wx: xavier(input, 3 * hidden, rng),
            wh: xavier(hidden, 3 * hidden, rng),
            b: Matrix::zeros(1, 3 * hidden),
            dwx: Matrix::zeros(input, 3 * hidden),
            dwh: Matrix::zeros(hidden, 3 * hidden),
            db: Matrix::zeros(1, 3 * hidden),
            cache: None,
        }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl SeqLayer for Gru {
    fn forward(&mut self, x: &Tensor3, _train: bool) -> Tensor3 {
        let (batch, time, feat) = x.shape();
        assert_eq!(feat, self.input, "GRU input width mismatch");
        let h = self.hidden;
        let mut out = Tensor3::zeros(batch, time, h);
        let mut h_t = Matrix::zeros(batch, h);
        let mut cache = GruCache {
            xs: Vec::with_capacity(time),
            h_prevs: Vec::with_capacity(time),
            gates: Vec::with_capacity(time),
        };
        for t in 0..time {
            let x_t = x.time_slice(t);
            // Pre-activations: x-part for all gates, h-part for z and r
            // directly; the n-block's h-part needs the reset gate first.
            let mut a = x_t.matmul(&self.wx);
            a.add_row_broadcast(&self.b);
            let hw = h_t.matmul(&self.wh); // (b, 3H), h-parts of z|r|n

            let mut z_g = Matrix::zeros(batch, h);
            let mut r_g = Matrix::zeros(batch, h);
            for bi in 0..batch {
                for hi in 0..h {
                    z_g.set(bi, hi, sigmoid(a.get(bi, hi) + hw.get(bi, hi)));
                    r_g.set(bi, hi, sigmoid(a.get(bi, h + hi) + hw.get(bi, h + hi)));
                }
            }
            // n pre-activation: a_n + (r .* h) Whn. Computing (r.*h) @ Whn
            // directly keeps the backward simple.
            let rh = r_g.hadamard(&h_t);
            let whn = self.wh.col_slice(2 * h, 3 * h); // (H, H)
            let nh = rh.matmul(&whn);
            let mut n_g = Matrix::zeros(batch, h);
            for bi in 0..batch {
                for hi in 0..h {
                    n_g.set(bi, hi, (a.get(bi, 2 * h + hi) + nh.get(bi, hi)).tanh());
                }
            }

            cache.h_prevs.push(h_t.clone());
            // h' = (1 - z) .* n + z .* h
            let mut h_new = Matrix::zeros(batch, h);
            for bi in 0..batch {
                for hi in 0..h {
                    let z = z_g.get(bi, hi);
                    h_new.set(bi, hi, (1.0 - z) * n_g.get(bi, hi) + z * h_t.get(bi, hi));
                }
            }
            out.set_time_slice(t, &h_new);
            cache.xs.push(x_t);
            cache.gates.push((z_g, r_g, n_g));
            h_t = h_new;
        }
        self.cache = Some(cache);
        out
    }

    fn backward(&mut self, dy: &Tensor3) -> Tensor3 {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let time = cache.xs.len();
        let batch = dy.batch();
        let h = self.hidden;
        assert_eq!(dy.features(), h, "GRU upstream gradient width mismatch");
        let whn = self.wh.col_slice(2 * h, 3 * h);

        let mut dx = Tensor3::zeros(batch, time, self.input);
        let mut dh_next = Matrix::zeros(batch, h);

        let steps = cache
            .gates
            .iter()
            .zip(&cache.h_prevs)
            .zip(&cache.xs)
            .enumerate()
            .rev();
        for (t, ((gates, h_prev), x_t)) in steps {
            let (z_g, r_g, n_g) = gates;

            let mut dh = dy.time_slice(t);
            dh.add_assign(&dh_next);

            // h' = (1-z) n + z h_prev
            let mut dz = Matrix::zeros(batch, h);
            let mut dn = Matrix::zeros(batch, h);
            let mut dh_prev = Matrix::zeros(batch, h);
            for bi in 0..batch {
                for hi in 0..h {
                    let d = dh.get(bi, hi);
                    let z = z_g.get(bi, hi);
                    let n = n_g.get(bi, hi);
                    let hp = h_prev.get(bi, hi);
                    dz.set(bi, hi, d * (hp - n));
                    dn.set(bi, hi, d * (1.0 - z));
                    dh_prev.set(bi, hi, d * z);
                }
            }

            // n = tanh(a_n + (r.*h) Whn)
            let mut da_n = dn.clone();
            for (v, &n) in da_n.as_mut_slice().iter_mut().zip(n_g.as_slice()) {
                *v *= 1.0 - n * n;
            }
            // through (r .* h_prev) @ Whn
            let drh = da_n.matmul_a_bt(&whn); // (b, H)
            let mut dr = drh.hadamard(h_prev);
            dh_prev.add_assign(&drh.hadamard(r_g));
            // gate pre-activations
            let mut da_z = dz;
            for (v, &z) in da_z.as_mut_slice().iter_mut().zip(z_g.as_slice()) {
                *v *= z * (1.0 - z);
            }
            for (v, &r) in dr.as_mut_slice().iter_mut().zip(r_g.as_slice()) {
                *v *= r * (1.0 - r);
            }
            let da_r = dr;

            // Stack [da_z | da_r | da_n] -> (b, 3H).
            let da = da_z.hcat(&da_r).hcat(&da_n);

            // Parameter gradients. wx/b take the stacked form directly;
            // wh's z|r blocks see h_prev, the n block sees (r .* h_prev).
            self.dwx.add_assign(&x_t.matmul_at_b(&da));
            self.db.add_assign(&da.sum_rows());
            let da_zr = da.col_slice(0, 2 * h);
            let dwh_zr = h_prev.matmul_at_b(&da_zr); // (H, 2H)
            let rh = r_g.hadamard(h_prev);
            let dwh_n = rh.matmul_at_b(&da_n); // (H, H)
            for r_i in 0..h {
                for c in 0..2 * h {
                    let v = self.dwh.get(r_i, c) + dwh_zr.get(r_i, c);
                    self.dwh.set(r_i, c, v);
                }
                for c in 0..h {
                    let v = self.dwh.get(r_i, 2 * h + c) + dwh_n.get(r_i, c);
                    self.dwh.set(r_i, 2 * h + c, v);
                }
            }

            // Input and recurrent gradients.
            dx.set_time_slice(t, &da.matmul_a_bt(&self.wx));
            let wh_zr = self.wh.col_slice(0, 2 * h); // (H, 2H)
            dh_prev.add_assign(&da_zr.matmul_a_bt(&wh_zr));
            dh_next = dh_prev;
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.wx, &mut self.dwx);
        f(&mut self.wh, &mut self.dwh);
        f(&mut self.b, &mut self.db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_seq_layer_input, check_seq_layer_params};
    use crate::layers::SeqLayer;

    #[test]
    fn output_shape_and_range() {
        let mut rng = Rng64::new(0);
        let mut g = Gru::new(2, 5, &mut rng);
        let mut x = Tensor3::zeros(3, 6, 2);
        rng.fill_normal(x.as_mut_slice());
        let y = g.forward(&x, true);
        assert_eq!(y.shape(), (3, 6, 5));
        assert!(y.is_finite());
        // h is a convex mix of tanh values and previous h: stays in (-1, 1)
        assert!(y.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng64::new(1);
        let mut g = Gru::new(2, 3, &mut rng);
        let mut x = Tensor3::zeros(2, 4, 2);
        rng.fill_normal(x.as_mut_slice());
        assert!(check_seq_layer_input(&mut g, &x, 1e-6, 1e-5));
        assert!(check_seq_layer_params(&mut g, &x, 1e-6, 1e-5));
    }

    #[test]
    fn memory_carries_information_forward() {
        let mut rng = Rng64::new(2);
        let mut g = Gru::new(1, 4, &mut rng);
        let mut x0 = Tensor3::zeros(1, 6, 1);
        let x1 = Tensor3::zeros(1, 6, 1);
        x0.set(0, 0, 0, 5.0);
        let y0 = g.forward(&x0, true);
        let y1 = g.forward(&x1, true);
        let diff_late: f64 = (0..4)
            .map(|hh| (y0.get(0, 5, hh) - y1.get(0, 5, hh)).abs())
            .sum();
        assert!(diff_late > 1e-6, "impulse must persist through memory");
    }

    #[test]
    fn fewer_params_than_lstm() {
        let mut rng = Rng64::new(3);
        let mut gru = Gru::new(4, 8, &mut rng);
        let mut lstm = crate::layers::Lstm::new(4, 8, &mut rng);
        assert!(SeqLayer::param_count(&mut gru) < SeqLayer::param_count(&mut lstm));
    }
}
