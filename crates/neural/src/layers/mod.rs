//! Neural-network layers with exact hand-derived backpropagation.
//!
//! Two layer families:
//!
//! * [`Layer`] — operates on `(batch, features)` matrices (dense stacks);
//! * [`SeqLayer`] — operates on `(batch, time, features)` tensors
//!   (convolutions, recurrent layers).
//!
//! The contract for both: `forward` caches whatever `backward` needs;
//! `backward` consumes the most recent forward's cache, **accumulates**
//! parameter gradients (so several backward passes sum, enabling composite
//! losses like the paper's main + auxiliary loss of Eq. 13), and returns
//! the gradient with respect to the layer's input. `visit_params` exposes
//! `(param, grad)` pairs in a deterministic order for the optimisers.

mod activation;
mod conv1d;
mod dense;
mod dropout;
mod gru;
mod lstm;
mod sequential;
mod softmax;

pub use activation::{ActKind, Activation, SeqActivation};
pub use conv1d::Conv1d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use gru::Gru;
pub use lstm::Lstm;
pub use sequential::{SeqSequential, Sequential, TimeDistributed};
pub use softmax::Softmax;

use crate::matrix::Matrix;
use crate::tensor3::Tensor3;
use crate::workspace::Workspace;

/// A differentiable transformation of `(batch, features)` matrices.
pub trait Layer {
    /// Computes the layer output, caching intermediates for `backward`.
    /// `train` toggles train-only behaviour (dropout).
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix;

    /// Backpropagates `dy` (gradient w.r.t. the last forward's output),
    /// accumulating parameter gradients, and returns the gradient w.r.t.
    /// the input.
    fn backward(&mut self, dy: &Matrix) -> Matrix;

    /// [`Self::forward`] drawing the output (and internal temporaries)
    /// from a [`Workspace`]; bit-identical to `forward`. Callers should
    /// `ws.give` the returned matrix back once done. The default
    /// delegates to the allocating path for layers without an override.
    // lint: cold — compat shim into the allocating legacy path; zero-alloc layers override it
    fn forward_ws(&mut self, x: &Matrix, train: bool, _ws: &mut Workspace) -> Matrix {
        self.forward(x, train)
    }

    /// [`Self::backward`] drawing buffers from a [`Workspace`];
    /// bit-identical to `backward`.
    // lint: cold — compat shim into the allocating legacy path; zero-alloc layers override it
    fn backward_ws(&mut self, dy: &Matrix, _ws: &mut Workspace) -> Matrix {
        self.backward(dy)
    }

    /// Visits `(parameter, gradient)` pairs in a fixed order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix));

    /// Clears accumulated gradients.
    // lint: hot — runs every training step between backward and the next forward
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.fill_zero());
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }
}

/// A differentiable transformation of `(batch, time, features)` tensors.
pub trait SeqLayer {
    /// Computes the layer output, caching intermediates for `backward`.
    fn forward(&mut self, x: &Tensor3, train: bool) -> Tensor3;

    /// Backpropagates through the last forward, accumulating parameter
    /// gradients; returns the gradient w.r.t. the input tensor.
    fn backward(&mut self, dy: &Tensor3) -> Tensor3;

    /// [`Self::forward`] drawing the output tensor from a [`Workspace`];
    /// bit-identical to `forward`. Callers should `ws.give3` the result
    /// back once done.
    // lint: cold — compat shim into the allocating legacy path; zero-alloc layers override it
    fn forward_ws(&mut self, x: &Tensor3, train: bool, _ws: &mut Workspace) -> Tensor3 {
        self.forward(x, train)
    }

    /// [`Self::backward`] drawing buffers from a [`Workspace`];
    /// bit-identical to `backward`.
    // lint: cold — compat shim into the allocating legacy path; zero-alloc layers override it
    fn backward_ws(&mut self, dy: &Tensor3, _ws: &mut Workspace) -> Tensor3 {
        self.backward(dy)
    }

    /// Visits `(parameter, gradient)` pairs in a fixed order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix));

    /// Clears accumulated gradients.
    // lint: hot — runs every training step between backward and the next forward
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.fill_zero());
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }
}

/// Xavier/Glorot uniform initialisation for a `(fan_in, fan_out)` weight.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut crate::rng::Rng64) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let mut m = Matrix::zeros(fan_in, fan_out);
    rng.fill_uniform(m.as_mut_slice(), -limit, limit);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = Rng64::new(0);
        let w = xavier(30, 20, &mut rng);
        let limit = (6.0f64 / 50.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
        // not all zero
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn param_count_via_visit() {
        let mut rng = Rng64::new(0);
        let mut d = Dense::new(3, 5, &mut rng);
        assert_eq!(Layer::param_count(&mut d), 3 * 5 + 5);
    }
}
