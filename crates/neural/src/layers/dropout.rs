//! Inverted dropout.

use super::Layer;
use crate::matrix::Matrix;
use crate::rng::Rng64;

/// Inverted dropout: during training each unit is zeroed with probability
/// `rate` and survivors are scaled by `1/(1-rate)`; at evaluation time the
/// layer is the identity. The paper trains with dropout 0.3 (Table V).
#[derive(Debug)]
pub struct Dropout {
    rate: f64,
    rng: Rng64,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Creates a dropout layer; `rate` is clamped into `[0, 0.95]`.
    pub fn new(rate: f64, seed: u64) -> Self {
        Self {
            rate: rate.clamp(0.0, 0.95),
            rng: Rng64::new(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if !train || self.rate == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
            if self.rng.uniform() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let y = x.hadamard(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        match &self.mask {
            None => dy.clone(),
            Some(mask) => dy.hadamard(mask),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Matrix::filled(4, 4, 2.0);
        assert_eq!(d.forward(&x, false), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn rate_zero_is_identity_even_in_train() {
        let mut d = Dropout::new(0.0, 0);
        let x = Matrix::filled(4, 4, 2.0);
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 1);
        let x = Matrix::filled(100, 100, 1.0);
        let y = d.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted scaling, mean {mean}");
        // some units dropped
        assert!(y.as_slice().contains(&0.0));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 2);
        let x = Matrix::filled(10, 10, 1.0);
        let y = d.forward(&x, true);
        let dx = d.backward(&Matrix::filled(10, 10, 1.0));
        // gradient flows exactly where activations survived
        for (a, b) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn rate_is_clamped() {
        assert_eq!(Dropout::new(2.0, 0).rate(), 0.95);
        assert_eq!(Dropout::new(-1.0, 0).rate(), 0.0);
    }
}
