//! Row-wise softmax as a [`Layer`].
//!
//! Wraps [`crate::matrix::softmax_rows`] /
//! [`crate::matrix::softmax_rows_backward`] so the normalisation can sit
//! inside a [`crate::layers::Sequential`] stack (e.g. as the head of an
//! attention-weight branch) and take part in the standard gradcheck
//! battery. Parameter-free: `visit_params` visits nothing.

use super::Layer;
use crate::matrix::{softmax_rows, softmax_rows_backward, Matrix};

/// Row-wise softmax layer: each row of the input is normalised to a
/// probability distribution.
#[derive(Debug, Clone, Default)]
pub struct Softmax {
    /// Cached forward output; the softmax Jacobian is a function of the
    /// output alone.
    y: Option<Matrix>,
}

impl Softmax {
    /// Creates the layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Softmax {
    fn forward(&mut self, x: &Matrix, _train: bool) -> Matrix {
        let mut y = x.clone();
        softmax_rows(&mut y);
        self.y = Some(y.clone());
        y
    }

    fn backward(&mut self, dy: &Matrix) -> Matrix {
        let y = self
            .y
            .as_ref()
            .expect("Softmax::backward called before forward");
        softmax_rows_backward(y, dy)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let mut layer = Softmax::new();
        let x = Matrix::from_fn(3, 4, |r, c| (r as f64 - c as f64) * 0.7);
        let y = layer.forward(&x, false);
        for r in 0..3 {
            let s: f64 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r} sums to {s}");
            assert!(y.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn is_parameter_free() {
        let mut layer = Softmax::new();
        assert_eq!(layer.param_count(), 0);
    }

    #[test]
    fn invariant_to_row_shift() {
        let mut layer = Softmax::new();
        let x = Matrix::from_fn(2, 3, |r, c| (r + c) as f64);
        let shifted = x.map(|v| v + 100.0);
        let a = layer.forward(&x, false);
        let b = layer.forward(&shifted, false);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_requires_forward() {
        let mut layer = Softmax::new();
        layer.backward(&Matrix::zeros(1, 1));
    }
}
