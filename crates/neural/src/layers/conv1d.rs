//! 1-D convolution over the time axis.
//!
//! The paper's Route-e sub-module applies two 1x3 convolutions to the route
//! trip-count series (Eqs. 5-6, Table IV): "The convolution layers are
//! configured with 1x3 filters, and stride of 1." We implement stride-1,
//! zero-padded ("same") convolution via im2col so forward and backward are
//! plain matrix products.

use super::{xavier, SeqLayer};
use crate::matrix::Matrix;
use crate::rng::Rng64;
use crate::tensor3::Tensor3;
use serde::{Deserialize, Serialize};

/// 1-D convolution over the time axis.
///
/// Two padding modes:
/// - [`Conv1d::new`]: stride-1, zero-padded ("same") — `(b, t, c_in) ->
///   (b, t, c_out)`, the paper's configuration.
/// - [`Conv1d::strided`]: unpadded ("valid") with stride `s` —
///   `(b, t, c_in) -> (b, (t - k)/s + 1, c_out)`, for temporal
///   downsampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    c_in: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    same_pad: bool,
    /// Weight laid out `(c_in * k, c_out)`: column-major over output
    /// channels so forward is `im2col @ w`.
    w: Matrix,
    b: Matrix,
    dw: Matrix,
    db: Matrix,
    #[serde(skip)]
    cache: Option<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    im2col: Matrix,
    batch: usize,
    /// Input sequence length (backward rebuilds `dx` at this length).
    time: usize,
}

impl Conv1d {
    /// Creates a Xavier-initialised convolution with odd kernel size `k`.
    pub fn new(c_in: usize, c_out: usize, k: usize, rng: &mut Rng64) -> Self {
        assert!(k % 2 == 1, "same-padding requires an odd kernel, got {k}");
        Self::build(c_in, c_out, k, 1, true, rng)
    }

    /// Creates an unpadded ("valid") convolution with stride `stride`:
    /// a sequence of length `t` shrinks to `(t - k) / stride + 1` steps.
    /// Any kernel size (odd or even) is accepted; `stride` must be
    /// positive.
    pub fn strided(c_in: usize, c_out: usize, k: usize, stride: usize, rng: &mut Rng64) -> Self {
        assert!(k >= 1, "kernel must be at least 1");
        assert!(stride >= 1, "stride must be at least 1, got {stride}");
        Self::build(c_in, c_out, k, stride, false, rng)
    }

    fn build(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        same_pad: bool,
        rng: &mut Rng64,
    ) -> Self {
        Self {
            c_in,
            c_out,
            k,
            stride,
            same_pad,
            w: xavier(c_in * k, c_out, rng),
            b: Matrix::zeros(1, c_out),
            dw: Matrix::zeros(c_in * k, c_out),
            db: Matrix::zeros(1, c_out),
            cache: None,
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Stride (always 1 for same-padded convolutions).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Output sequence length for an input of `t` steps.
    ///
    /// Same padding preserves `t`; valid padding yields
    /// `(t - k) / stride + 1` and panics when the kernel no longer fits —
    /// the static shape analyzer (cityod-lint rule S) flags annotated
    /// stacks that would reach this at build time.
    pub fn out_time(&self, t: usize) -> usize {
        if self.same_pad {
            t
        } else {
            assert!(
                t >= self.k,
                "valid convolution needs sequence length {t} >= kernel {}",
                self.k
            );
            (t - self.k) / self.stride + 1
        }
    }

    /// Offset of input step read by output step `ti`, tap `ki` — negative
    /// or `>= t` means the tap falls in the zero padding.
    fn src_step(&self, ti: usize, ki: usize) -> isize {
        let pad = if self.same_pad { self.k / 2 } else { 0 };
        (ti * self.stride + ki) as isize - pad as isize
    }

    /// Builds the `(b * out_t, c_in * k)` im2col matrix.
    fn im2col(&self, x: &Tensor3) -> Matrix {
        let (b, t, f) = x.shape();
        debug_assert_eq!(f, self.c_in);
        let out_t = self.out_time(t);
        let mut out = Matrix::zeros(b * out_t, self.c_in * self.k);
        for bi in 0..b {
            for ti in 0..out_t {
                let row = out.row_mut(bi * out_t + ti);
                for (ki, tap) in row.chunks_exact_mut(self.c_in).enumerate() {
                    let src_t = self.src_step(ti, ki);
                    if src_t < 0 || src_t >= t as isize {
                        continue; // zero padding
                    }
                    tap.copy_from_slice(x.step(bi, src_t as usize));
                }
            }
        }
        out
    }
}

impl SeqLayer for Conv1d {
    fn forward(&mut self, x: &Tensor3, _train: bool) -> Tensor3 {
        let (b, t, _) = x.shape();
        let out_t = self.out_time(t);
        let cols = self.im2col(x);
        let mut y = cols.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        self.cache = Some(ConvCache {
            im2col: cols,
            batch: b,
            time: t,
        });
        Tensor3::unflatten_time(b, out_t, &y).expect("conv output shape is consistent")
    }

    fn backward(&mut self, dy: &Tensor3) -> Tensor3 {
        let cache = self.cache.as_ref().expect("backward called before forward");
        let (b, t) = (cache.batch, cache.time);
        let out_t = self.out_time(t);
        debug_assert_eq!(dy.time(), out_t, "upstream gradient length mismatch");
        let dy_flat = dy.flatten_time(); // (b*out_t, c_out)
        self.dw.add_assign(&cache.im2col.matmul_at_b(&dy_flat));
        self.db.add_assign(&dy_flat.sum_rows());

        // d(im2col) = dy @ w^T, then scatter-add back through the padding.
        let dcols = dy_flat.matmul_a_bt(&self.w); // (b*out_t, c_in*k)
        let mut dx = Tensor3::zeros(b, t, self.c_in);
        for bi in 0..b {
            for ti in 0..out_t {
                let row = dcols.row(bi * out_t + ti);
                for (ki, tap) in row.chunks_exact(self.c_in).enumerate() {
                    let src_t = self.src_step(ti, ki);
                    if src_t < 0 || src_t >= t as isize {
                        continue;
                    }
                    let dst = dx.step_mut(bi, src_t as usize);
                    for (d, &g) in dst.iter_mut().zip(tap) {
                        *d += g;
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{check_seq_layer_input, check_seq_layer_params};

    #[test]
    fn output_shape() {
        let mut rng = Rng64::new(0);
        let mut c = Conv1d::new(2, 3, 3, &mut rng);
        let x = Tensor3::zeros(4, 7, 2);
        let y = c.forward(&x, true);
        assert_eq!(y.shape(), (4, 7, 3));
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = Rng64::new(0);
        let mut c = Conv1d::new(1, 1, 3, &mut rng);
        // kernel [0, 1, 0] -> identity
        c.w.fill_zero();
        c.w.set(1, 0, 1.0);
        let x = Tensor3::from_vec(1, 5, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let y = c.forward(&x, true);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn shift_kernel_pads_with_zero() {
        let mut rng = Rng64::new(0);
        let mut c = Conv1d::new(1, 1, 3, &mut rng);
        // kernel [1, 0, 0]: output_t = input_{t-1}
        c.w.fill_zero();
        c.w.set(0, 0, 1.0);
        let x = Tensor3::from_vec(1, 4, 1, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn averaging_kernel() {
        let mut rng = Rng64::new(0);
        let mut c = Conv1d::new(1, 1, 3, &mut rng);
        for i in 0..3 {
            c.w.set(i, 0, 1.0 / 3.0);
        }
        c.b.set(0, 0, 0.0);
        let x = Tensor3::from_vec(1, 3, 1, vec![3.0, 3.0, 3.0]).unwrap();
        let y = c.forward(&x, true);
        // middle element sees all three
        assert!((y.get(0, 1, 0) - 3.0).abs() < 1e-12);
        // edges see two values + zero pad
        assert!((y.get(0, 0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = Rng64::new(1);
        let mut c = Conv1d::new(2, 3, 3, &mut rng);
        let mut x = Tensor3::zeros(2, 5, 2);
        rng.fill_normal(x.as_mut_slice());
        assert!(check_seq_layer_input(&mut c, &x, 1e-6, 1e-6));
        assert!(check_seq_layer_params(&mut c, &x, 1e-6, 1e-6));
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_rejected() {
        let mut rng = Rng64::new(0);
        // lint: allow(shape) — the even kernel is the point: this test
        // asserts the constructor panic the analyzer statically predicts.
        let _ = Conv1d::new(1, 1, 4, &mut rng);
    }

    #[test]
    fn strided_output_shape() {
        let mut rng = Rng64::new(0);
        // t' = (t - k)/s + 1 = (9 - 3)/2 + 1 = 4
        let mut c = Conv1d::strided(2, 3, 3, 2, &mut rng);
        let x = Tensor3::zeros(4, 9, 2);
        let y = c.forward(&x, true);
        assert_eq!(y.shape(), (4, 4, 3));
        assert_eq!(c.out_time(9), 4);
        assert_eq!(c.stride(), 2);
    }

    #[test]
    fn strided_pick_kernel_downsamples() {
        let mut rng = Rng64::new(0);
        // kernel [1, 0] with stride 2 picks every even-indexed element.
        let mut c = Conv1d::strided(1, 1, 2, 2, &mut rng);
        c.w.fill_zero();
        c.w.set(0, 0, 1.0);
        let x = Tensor3::from_vec(1, 6, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = c.forward(&x, true);
        assert_eq!(y.as_slice(), &[1.0, 3.0, 5.0]);
    }

    #[test]
    fn strided_gradients_match_finite_difference() {
        let mut rng = Rng64::new(1);
        let mut c = Conv1d::strided(2, 3, 3, 2, &mut rng);
        let mut x = Tensor3::zeros(2, 7, 2);
        rng.fill_normal(x.as_mut_slice());
        assert!(check_seq_layer_input(&mut c, &x, 1e-6, 1e-6));
        assert!(check_seq_layer_params(&mut c, &x, 1e-6, 1e-6));
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn strided_kernel_longer_than_sequence_panics() {
        let mut rng = Rng64::new(0);
        let mut c = Conv1d::strided(1, 1, 5, 1, &mut rng);
        let _ = c.forward(&Tensor3::zeros(1, 3, 1), true);
    }

    #[test]
    fn serde_roundtrip_preserves_padding_mode() {
        let mut rng = Rng64::new(0);
        for c in [
            Conv1d::new(1, 2, 3, &mut rng),
            Conv1d::strided(2, 1, 4, 2, &mut rng),
        ] {
            let json = serde_json::to_string(&c).unwrap();
            let back: Conv1d = serde_json::from_str(&json).unwrap();
            assert_eq!(back.stride(), c.stride());
            assert_eq!(back.out_time(9), c.out_time(9));
        }
    }
}
