//! Reusable buffer pool for allocation-free training loops.
//!
//! A [`Workspace`] owns a pool of `Vec<f64>` buffers that [`Matrix`] and
//! [`Tensor3`] temporaries are carved from. Layers' `forward_ws` /
//! `backward_ws` entry points (see [`crate::layers::Layer`]) take their
//! outputs and internal temporaries from the pool and return spent
//! buffers to it, so after a warmup pass every training step runs
//! without touching the heap — the property the allocation-regression
//! test locks in.
//!
//! ## Lifetime rules (DESIGN.md §13)
//!
//! * A buffer obtained with [`Workspace::take`] / [`Workspace::take3`]
//!   is owned by the caller until it is either returned with
//!   [`Workspace::give`] / [`Workspace::give3`] or dropped. Dropping is
//!   always safe — it only forfeits the reuse.
//! * Buffers are recycled best-fit by capacity, so a workspace shared by
//!   differently-shaped temporaries converges on the few distinct sizes
//!   the loop needs.
//! * The pool never shrinks on its own; [`Workspace::clear`] releases
//!   everything.
//!
//! Reuse is numerically invisible: `take` returns a zeroed buffer and
//! every `*_into` kernel fully overwrites its output, so a recycled
//! buffer yields exactly the bits a fresh allocation would.

use crate::matrix::Matrix;
use crate::tensor3::Tensor3;

/// A pool of `f64` buffers shared by matrix and tensor temporaries.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
    hits: u64,
    misses: u64,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn take_buf(&mut self, n: usize) -> Vec<f64> {
        // Best fit: the smallest pooled buffer whose capacity suffices.
        let mut best: Option<(usize, usize)> = None;
        for (ix, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= n && best.is_none_or(|(_, c)| cap < c) {
                best = Some((ix, cap));
            }
        }
        match best {
            Some((ix, _)) => {
                self.hits += 1;
                self.pool.swap_remove(ix)
            }
            None => {
                self.misses += 1;
                // lint: allow(alloc) — pool miss: only until the pool has seen every live shape; steady state recycles via swap_remove above.
                Vec::with_capacity(n)
            }
        }
    }

    /// A zeroed `(rows, cols)` matrix, recycled from the pool when a
    /// large-enough buffer is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_raw(rows, cols, self.take_buf(rows * cols))
    }

    /// Returns a matrix's buffer to the pool.
    pub fn give(&mut self, m: Matrix) {
        self.pool.push(m.into_raw());
    }

    /// A zeroed `(b, t, f)` tensor, recycled from the pool when a
    /// large-enough buffer is available.
    pub fn take3(&mut self, b: usize, t: usize, f: usize) -> Tensor3 {
        Tensor3::from_raw(b, t, f, self.take_buf(b * t * f))
    }

    /// Returns a tensor's buffer to the pool.
    pub fn give3(&mut self, t: Tensor3) {
        self.pool.push(t.into_raw());
    }

    /// Buffers currently sitting in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Pool reuses since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fresh allocations since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every pooled buffer.
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_shapes() {
        let mut ws = Workspace::new();
        let mut m = ws.take(3, 4);
        assert_eq!(m, Matrix::zeros(3, 4));
        m.as_mut_slice().fill(7.0);
        ws.give(m);
        // Recycled buffer must come back zeroed despite the writes.
        let m2 = ws.take(2, 5);
        assert_eq!(m2, Matrix::zeros(2, 5));
        assert_eq!(ws.hits(), 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let big = ws.take(10, 10);
        let small = ws.take(2, 2);
        ws.give(big);
        ws.give(small);
        // A 2x2 request must grab the 4-capacity buffer, not the 100.
        let m = ws.take(2, 2);
        assert!(m.len() == 4);
        assert_eq!(ws.pooled(), 1);
        let remaining = ws.take(10, 10);
        assert_eq!(remaining.len(), 100);
        assert_eq!(ws.misses(), 2, "both originals were fresh");
    }

    #[test]
    fn tensors_share_the_pool_with_matrices() {
        let mut ws = Workspace::new();
        let m = ws.take(4, 6);
        ws.give(m);
        let t = ws.take3(2, 3, 4);
        assert_eq!(ws.hits(), 1, "tensor reused the matrix buffer");
        assert_eq!(t.shape(), (2, 3, 4));
        ws.give3(t);
        assert_eq!(ws.pooled(), 1);
        ws.clear();
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn steady_state_stops_allocating() {
        let mut ws = Workspace::new();
        for _ in 0..10 {
            let a = ws.take(8, 8);
            let b = ws.take3(2, 4, 8);
            ws.give(a);
            ws.give3(b);
        }
        assert_eq!(ws.misses(), 2, "only the first round allocates");
    }
}
