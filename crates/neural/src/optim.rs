//! Optimisers.
//!
//! The paper trains with learning rate 1e-3 (Table V); we provide plain
//! SGD (with optional momentum) and Adam. Optimiser state (momentum /
//! moment estimates) is kept per parameter *slot*, identified by the
//! deterministic order `visit_params` yields — so an optimiser must be
//! paired with one model for its lifetime.

use crate::layers::{Layer, SeqLayer};
use crate::matrix::Matrix;
use obs::Counter;

/// Global counter of completed [`Sgd`] steps (all instances).
pub const SGD_STEPS_METRIC: &str = "optim_sgd_steps_total";
/// Global counter of completed [`Adam`] steps (all instances).
pub const ADAM_STEPS_METRIC: &str = "optim_adam_steps_total";
/// Global counter of completed [`RmsProp`] steps (all instances).
pub const RMSPROP_STEPS_METRIC: &str = "optim_rmsprop_steps_total";

/// Common optimiser interface over both layer families.
pub trait Optimizer {
    /// Called once per optimisation step before any [`Optimizer::apply`].
    fn begin_step(&mut self);

    /// Updates one `(param, grad)` slot.
    fn apply(&mut self, slot: usize, p: &mut Matrix, g: &Matrix);

    /// Number of slots this optimiser currently holds state for (0 until
    /// the first step for stateful optimisers, always 0 for stateless
    /// ones). [`Optimizer::step`] uses it to detect a model whose
    /// parameter list shrank after the optimiser was bound to it.
    fn bound_slots(&self) -> usize {
        0
    }

    /// Steps every parameter of a flat layer/stack.
    ///
    /// # Panics
    ///
    /// Panics if the layer exposes fewer parameter slots than the
    /// optimiser holds state for — the optimiser was bound to a different
    /// (larger) model and would silently mis-pair state otherwise.
    fn step(&mut self, layer: &mut dyn Layer)
    where
        Self: Sized,
    {
        self.begin_step();
        let mut slot = 0usize;
        layer.visit_params(&mut |p, g| {
            self.apply(slot, p, g);
            slot += 1;
        });
        check_slot_count(slot, self.bound_slots());
    }

    /// Steps every parameter of a sequence layer/stack.
    ///
    /// # Panics
    ///
    /// Panics on a slot-count mismatch, as for [`Optimizer::step`].
    fn step_seq(&mut self, layer: &mut dyn SeqLayer)
    where
        Self: Sized,
    {
        self.begin_step();
        let mut slot = 0usize;
        layer.visit_params(&mut |p, g| {
            self.apply(slot, p, g);
            slot += 1;
        });
        check_slot_count(slot, self.bound_slots());
    }
}

/// Shared slot-count guard for [`Optimizer::step`]/[`Optimizer::step_seq`].
fn check_slot_count(visited: usize, bound: usize) {
    assert!(
        visited >= bound,
        "optimiser/model mismatch: optimiser holds state for {bound} parameter \
         slots but the model exposes only {visited}; an optimiser must stay \
         paired with one model for its lifetime (create a fresh optimiser \
         after editing the model)"
    );
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Matrix>,
    // Cached handle: registry lookups allocate a key String per call,
    // which would put a heap allocation in every training step.
    steps: Counter,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
            steps: obs::global().counter(SGD_STEPS_METRIC),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
            steps: obs::global().counter(SGD_STEPS_METRIC),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Adjusts the learning rate (schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Number of parameter slots with momentum state.
    pub fn slot_count(&self) -> usize {
        self.velocity.len()
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {
        self.steps.inc();
    }

    fn bound_slots(&self) -> usize {
        self.velocity.len()
    }

    fn apply(&mut self, slot: usize, p: &mut Matrix, g: &Matrix) {
        if self.momentum == 0.0 {
            p.axpy(-self.lr, g);
            return;
        }
        let v = slot_state(&mut self.velocity, slot, p, "SGD");
        v.scale(self.momentum);
        v.axpy(-self.lr, g);
        p.add_assign(v);
    }
}

/// Grows `states` so `slot` exists, lazily sizes a fresh slot to the
/// parameter, and returns the slot's state. A slot that already carries
/// state of a *different* shape means the optimiser is being applied to
/// a model it was not paired with — refuse loudly instead of silently
/// mis-pairing state.
// lint: cold — sizes optimiser state on the first step only; steady-state calls return the live slot
fn slot_state<'s>(
    states: &'s mut Vec<Matrix>,
    slot: usize,
    p: &Matrix,
    opt_name: &str,
) -> &'s mut Matrix {
    if states.len() <= slot {
        states.resize_with(slot + 1, || Matrix::zeros(0, 0));
    }
    // lint: allow(panic) — the resize above guarantees the slot exists
    let s = &mut states[slot];
    if s.shape() != p.shape() {
        assert!(
            s.is_empty(),
            "{opt_name} slot {slot} shape mismatch: optimiser state is {:?} but the \
             parameter is {:?}; an optimiser must stay paired with one model for \
             its lifetime (create a fresh optimiser after editing the model)",
            s.shape(),
            p.shape()
        );
        *s = Matrix::zeros(p.rows(), p.cols());
    }
    s
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    // Cached handle: see `Sgd::steps`.
    steps: Counter,
}

/// The complete state of an [`Adam`] optimiser — hyperparameters, step
/// counter, and both moment estimates per slot. Restoring a snapshot with
/// [`Adam::from_snapshot`] resumes training **bit-exactly**: the next
/// update is identical to the one an uninterrupted optimiser would take.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamSnapshot {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator stabiliser.
    pub eps: f64,
    /// Completed optimisation steps (drives bias correction).
    pub t: u64,
    /// First-moment estimate per parameter slot.
    pub m: Vec<Matrix>,
    /// Second-moment estimate per parameter slot.
    pub v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            steps: obs::global().counter(ADAM_STEPS_METRIC),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Adjusts the learning rate (schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Number of parameter slots this optimiser holds moment state for.
    /// Zero until the first step; afterwards it must match the slot count
    /// of the model the optimiser is paired with.
    pub fn slot_count(&self) -> usize {
        self.m.len()
    }

    /// Captures the full optimiser state for checkpointing.
    pub fn snapshot(&self) -> AdamSnapshot {
        AdamSnapshot {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Rebuilds an optimiser from a [`snapshot`](Adam::snapshot), resuming
    /// the moment estimates and step counter bit-exactly.
    pub fn from_snapshot(s: AdamSnapshot) -> Self {
        assert_eq!(
            s.m.len(),
            s.v.len(),
            "Adam snapshot is inconsistent: {} first-moment vs {} second-moment slots",
            s.m.len(),
            s.v.len()
        );
        Self {
            lr: s.lr,
            beta1: s.beta1,
            beta2: s.beta2,
            eps: s.eps,
            t: s.t,
            m: s.m,
            v: s.v,
            steps: obs::global().counter(ADAM_STEPS_METRIC),
        }
    }
}

impl Optimizer for Adam {
    // lint: hot — advances the step counter once per zero-alloc training step
    fn begin_step(&mut self) {
        self.t += 1;
        self.steps.inc();
    }

    fn bound_slots(&self) -> usize {
        self.m.len()
    }

    // lint: hot — per-parameter update kernel of the zero-alloc training step
    fn apply(&mut self, slot: usize, p: &mut Matrix, g: &Matrix) {
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let m = slot_state(&mut self.m, slot, p, "Adam");
        let v = slot_state(&mut self.v, slot, p, "Adam");
        for ((pv, gv), (mv, vv)) in p
            .as_mut_slice()
            .iter_mut()
            .zip(g.as_slice())
            .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
        {
            *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
            *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            let m_hat = *mv / bc1;
            let v_hat = *vv / bc2;
            *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// RMSProp (Tieleman & Hinton 2012): per-parameter learning rates from an
/// exponential moving average of squared gradients.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f64,
    decay: f64,
    eps: f64,
    v: Vec<Matrix>,
    // Cached handle: see `Sgd::steps`.
    steps: Counter,
}

impl RmsProp {
    /// RMSProp with the customary decay of 0.9.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            decay: 0.9,
            eps: 1e-8,
            v: Vec::new(),
            steps: obs::global().counter(RMSPROP_STEPS_METRIC),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Adjusts the learning rate (schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }
}

impl Optimizer for RmsProp {
    fn begin_step(&mut self) {
        self.steps.inc();
    }

    fn bound_slots(&self) -> usize {
        self.v.len()
    }

    fn apply(&mut self, slot: usize, p: &mut Matrix, g: &Matrix) {
        let v = slot_state(&mut self.v, slot, p, "RMSProp");
        for ((pv, gv), vv) in p
            .as_mut_slice()
            .iter_mut()
            .zip(g.as_slice())
            .zip(v.as_mut_slice().iter_mut())
        {
            *vv = self.decay * *vv + (1.0 - self.decay) * gv * gv;
            *pv -= self.lr * gv / (vv.sqrt() + self.eps);
        }
    }
}

/// Step-decay learning-rate schedule: multiplies the base rate by
/// `gamma` every `period` steps.
#[derive(Debug, Clone)]
pub struct StepDecay {
    base_lr: f64,
    gamma: f64,
    period: usize,
}

impl StepDecay {
    /// Creates a schedule. `period` must be positive; `gamma` in (0, 1].
    pub fn new(base_lr: f64, gamma: f64, period: usize) -> Self {
        Self {
            base_lr,
            gamma: gamma.clamp(1e-6, 1.0),
            period: period.max(1),
        }
    }

    /// The learning rate at `step` (0-based).
    pub fn lr_at(&self, step: usize) -> f64 {
        self.base_lr * self.gamma.powi((step / self.period) as i32)
    }
}

/// Scales all gradients of `layer` so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(layer: &mut dyn Layer, max_norm: f64) -> f64 {
    let mut sq = 0.0;
    layer.visit_params(&mut |_, g| sq += g.as_slice().iter().map(|v| v * v).sum::<f64>());
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        layer.visit_params(&mut |_, g| g.scale(scale));
    }
    norm
}

/// Sequence-layer variant of [`clip_grad_norm`].
pub fn clip_grad_norm_seq(layer: &mut dyn SeqLayer, max_norm: f64) -> f64 {
    let mut sq = 0.0;
    layer.visit_params(&mut |_, g| sq += g.as_slice().iter().map(|v| v * v).sum::<f64>());
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        layer.visit_params(&mut |_, g| g.scale(scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{ActKind, Activation, Dense, Sequential};
    use crate::loss::mse;
    use crate::rng::Rng64;

    /// A convex quadratic fit: y = 2x - 1 learned by a linear layer.
    fn train_linear(opt: &mut impl Optimizer, steps: usize) -> f64 {
        let mut rng = Rng64::new(0);
        let mut net = Dense::new(1, 1, &mut rng);
        let x = Matrix::from_vec(8, 1, (0..8).map(|i| i as f64 / 4.0).collect()).unwrap();
        let y = x.map(|v| 2.0 * v - 1.0);
        let mut last = f64::INFINITY;
        for _ in 0..steps {
            let pred = net.forward(&x, true);
            let (loss, grad) = mse(&pred, &y);
            net.backward(&grad);
            opt.step(&mut net);
            net.zero_grad();
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        let mut opt = Sgd::new(0.1);
        assert!(train_linear(&mut opt, 500) < 1e-3);
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let mut plain = Sgd::new(0.02);
        let mut fancy = Sgd::with_momentum(0.02, 0.9);
        let slow = train_linear(&mut plain, 100);
        let fast = train_linear(&mut fancy, 100);
        assert!(fast < slow, "momentum {fast} should beat plain {slow}");
    }

    #[test]
    fn adam_converges_on_linear_fit() {
        let mut opt = Adam::new(0.05);
        assert!(train_linear(&mut opt, 400) < 1e-3);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam update has magnitude
        // ~lr regardless of gradient scale.
        let mut opt = Adam::new(0.1);
        let mut p = Matrix::filled(1, 1, 0.0);
        let g = Matrix::filled(1, 1, 1234.0);
        opt.begin_step();
        opt.apply(0, &mut p, &g);
        assert!((p.get(0, 0).abs() - 0.1).abs() < 1e-6, "{}", p.get(0, 0));
    }

    #[test]
    fn optimiser_steps_are_counted_globally() {
        // Other parallel tests also step optimisers, so only a lower
        // bound on the global counter is checkable.
        let before = obs::global().counter(ADAM_STEPS_METRIC).get();
        let mut opt = Adam::new(0.05);
        train_linear(&mut opt, 10);
        let after = obs::global().counter(ADAM_STEPS_METRIC).get();
        assert!(after >= before + 10, "{before} -> {after}");
    }

    #[test]
    fn rmsprop_converges_on_linear_fit() {
        let mut opt = RmsProp::new(0.01);
        assert!(train_linear(&mut opt, 500) < 1e-3);
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay::new(0.1, 0.5, 100);
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(99), 0.1);
        assert!((s.lr_at(100) - 0.05).abs() < 1e-12);
        assert!((s.lr_at(250) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_caps_and_reports() {
        let mut rng = Rng64::new(1);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 2, &mut rng)),
            Box::new(Activation::new(ActKind::Tanh)),
        ]);
        let x = Matrix::filled(4, 2, 1.0);
        let y = net.forward(&x, true);
        net.backward(&y);
        let pre = clip_grad_norm(&mut net, 1e-3);
        assert!(pre > 1e-3);
        let mut sq = 0.0;
        net.visit_params(&mut |_, g| sq += g.as_slice().iter().map(|v| v * v).sum::<f64>());
        assert!((sq.sqrt() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn adam_snapshot_resume_is_bit_exact() {
        // Train 2N steps in one go vs N steps, snapshot/restore, N more:
        // both the parameters and every intermediate loss must match.
        let mut rng = Rng64::new(7);
        let mut a = Dense::new(2, 3, &mut rng);
        let mut rng = Rng64::new(7);
        let mut b = Dense::new(2, 3, &mut rng);
        let x = Matrix::from_fn(4, 2, |r, c| (r + c) as f64 * 0.25);
        let y = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) % 5) as f64 * 0.2);
        let step = |net: &mut Dense, opt: &mut Adam| -> f64 {
            let pred = net.forward(&x, true);
            let (loss, grad) = mse(&pred, &y);
            net.backward(&grad);
            opt.step(net);
            net.zero_grad();
            loss
        };
        let mut opt_a = Adam::new(0.05);
        let straight: Vec<f64> = (0..20).map(|_| step(&mut a, &mut opt_a)).collect();
        let mut opt_b = Adam::new(0.05);
        let mut resumed: Vec<f64> = (0..10).map(|_| step(&mut b, &mut opt_b)).collect();
        let snap = opt_b.snapshot();
        assert_eq!(snap.t, 10);
        assert_eq!(snap.m.len(), opt_b.slot_count());
        drop(opt_b);
        let mut opt_b = Adam::from_snapshot(snap);
        resumed.extend((0..10).map(|_| step(&mut b, &mut opt_b)));
        assert_eq!(straight, resumed);
        let mut wa = Vec::new();
        a.visit_params(&mut |p, _| wa.push(p.clone()));
        let mut wb = Vec::new();
        b.visit_params(&mut |p, _| wb.push(p.clone()));
        assert_eq!(wa, wb);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn adam_panics_on_repaired_model_shape() {
        let mut opt = Adam::new(0.1);
        let mut p = Matrix::filled(2, 2, 0.0);
        let g = Matrix::filled(2, 2, 1.0);
        opt.begin_step();
        opt.apply(0, &mut p, &g);
        // Same slot, different shape: the optimiser was bound to another
        // model — must refuse instead of silently resetting state.
        let mut p2 = Matrix::filled(3, 1, 0.0);
        let g2 = Matrix::filled(3, 1, 1.0);
        opt.begin_step();
        opt.apply(0, &mut p2, &g2);
    }

    #[test]
    #[should_panic(expected = "optimiser/model mismatch")]
    fn adam_panics_when_model_shrinks() {
        let mut rng = Rng64::new(0);
        let mut big = Sequential::new(vec![
            Box::new(Dense::new(2, 2, &mut rng)),
            Box::new(Dense::new(2, 2, &mut rng)),
        ]);
        let mut small = Dense::new(2, 2, &mut rng);
        let x = Matrix::filled(1, 2, 1.0);
        let mut opt = Adam::new(0.1);
        let y = big.forward(&x, true);
        big.backward(&y);
        opt.step(&mut big);
        assert_eq!(opt.slot_count(), 4);
        let y = small.forward(&x, true);
        small.backward(&y);
        opt.step(&mut small); // 2 slots < 4 bound slots
    }

    #[test]
    fn lr_setters() {
        let mut s = Sgd::new(0.1);
        s.set_lr(0.01);
        assert_eq!(s.lr(), 0.01);
        let mut a = Adam::new(0.1);
        a.set_lr(0.5);
        assert_eq!(a.lr(), 0.5);
    }
}
