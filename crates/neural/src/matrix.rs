//! Dense row-major `f64` matrices and the linear-algebra kernel set the
//! layers are built from.
//!
//! The three matmul kernels and the row-wise softmax fan out across rayon
//! workers once a product is large enough to amortise the dispatch (see
//! [`PAR_MIN_FLOPS`]). Parallel results are **bit-identical** to serial
//! ones: work is split by output row and every row accumulates its terms
//! in the same order either way, so thread count never changes numerics.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimum multiply-add count before a matmul fans out across threads;
/// below this the dispatch overhead outweighs the work.
pub const PAR_MIN_FLOPS: usize = 1 << 17;

/// True when a kernel touching `flops` multiply-adds over `rows` output
/// rows should run in parallel.
#[inline]
fn should_parallelise(rows: usize, flops: usize) -> bool {
    rows > 1 && flops >= PAR_MIN_FLOPS && rayon::current_num_threads() > 1
}

/// Error for shape violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError(pub String);

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `(rows, cols)`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError(format!(
                "expected {rows}x{cols}={} values, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a 0-element matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        // lint: allow(panic) — bounds checked by the debug_assert; the
        // innermost hot-path accessor every kernel funnels through
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        // lint: allow(panic) — bounds checked by the debug_assert; the
        // innermost hot-path accessor every kernel funnels through
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        // lint: allow(panic) — bounds checked by the debug_assert; the
        // innermost hot-path accessor every kernel funnels through
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        // lint: allow(panic) — bounds checked by the debug_assert; the
        // innermost hot-path accessor every kernel funnels through
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self @ rhs`; `(m,k) @ (k,n) -> (m,n)`.
    ///
    /// Large products run row-parallel; results are bit-identical to the
    /// serial execution (see the module docs).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({},{}) @ ({},{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        let flops = m.saturating_mul(k).saturating_mul(n);
        if should_parallelise(m, flops) {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, out_row)| {
                    matmul_row_into(self.row(i), rhs, out_row);
                });
            return out;
        }
        // i-k-j order: streams through rhs rows, cache friendly.
        for i in 0..m {
            matmul_row_into(self.row(i), rhs, out.row_mut(i));
        }
        out
    }

    /// `self^T @ rhs`; `(k,m)^T @ (k,n) -> (m,n)`. Avoids materialising the
    /// transpose (used for weight gradients `x^T @ dy`).
    ///
    /// The parallel path splits by output row; every output element sums
    /// its terms in ascending `p` order on both paths, so results are
    /// bit-identical regardless of thread count.
    pub fn matmul_at_b(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_at_b shape mismatch: ({},{})^T @ ({},{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        let flops = m.saturating_mul(k).saturating_mul(n);
        if should_parallelise(m, flops) {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, out_row)| {
                    for p in 0..k {
                        let a = self.get(p, i);
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = rhs.row(p);
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                });
            return out;
        }
        // Serial: p-outer streams both operands row-major.
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = rhs.row(p);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ rhs^T`; `(m,k) @ (n,k)^T -> (m,n)`. Used for input gradients
    /// `dy @ W^T`. Row-parallel above the size threshold, bit-identical to
    /// serial.
    pub fn matmul_a_bt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_a_bt shape mismatch: ({},{}) @ ({},{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        let flops = m.saturating_mul(k).saturating_mul(n);
        if should_parallelise(m, flops) {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, out_row)| {
                    let a_row = self.row(i);
                    for (j, o) in out_row.iter_mut().enumerate() {
                        *o = dot(a_row, rhs.row(j));
                    }
                });
            return out;
        }
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                let b_row = rhs.row(j);
                *o = dot(a_row, b_row);
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise in-place subtraction.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }

    /// In-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise (Hadamard) product, in place.
    pub fn hadamard_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
    }

    /// Element-wise product, allocating.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.hadamard_assign(rhs);
        out
    }

    /// Scales all elements in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` element-wise, allocating.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds a row vector (bias) to every row.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = self.row_mut(r);
            for (a, b) in row.iter_mut().zip(&bias.data) {
                *a += b;
            }
        }
    }

    /// Sums rows into a `(1, cols)` vector (bias gradients).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sets every element to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            let (left, right) = out.row_mut(r).split_at_mut(self.cols);
            left.copy_from_slice(self.row(r));
            right.copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Column slice `[c0, c1)` as a new matrix.
    pub fn col_slice(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols, "col_slice out of range");
        let mut out = Matrix::zeros(self.rows, c1 - c0);
        for r in 0..self.rows {
            // lint: allow(panic) — range validated by the assert above
            out.row_mut(r).copy_from_slice(&self.row(r)[c0..c1]);
        }
        out
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Accumulates `a_row @ rhs` into `out_row` (one output row of a matmul);
/// shared by the serial and parallel paths so both produce identical bits.
#[inline]
fn matmul_row_into(a_row: &[f64], rhs: &Matrix, out_row: &mut [f64]) {
    for (p, &a) in a_row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row = rhs.row(p);
        for (o, &b) in out_row.iter_mut().zip(b_row) {
            *o += a * b;
        }
    }
}

/// Row-wise softmax in place; numerically stabilised by row-max shifting.
/// Rows are independent, so large matrices run row-parallel with
/// bit-identical results.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    // An exp costs roughly an order of magnitude more than a multiply-add,
    // so weight elements accordingly against the flop threshold.
    if cols > 0 && should_parallelise(m.rows(), m.len().saturating_mul(16)) {
        m.as_mut_slice()
            .par_chunks_mut(cols)
            .for_each(softmax_row_inplace);
        return;
    }
    for r in 0..m.rows() {
        softmax_row_inplace(m.row_mut(r));
    }
}

#[inline]
fn softmax_row_inplace(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Backward pass of row-wise softmax: given the softmax output `y` and the
/// upstream gradient `dy`, returns `dx` where
/// `dx = y * (dy - sum(dy * y, per row))`.
pub fn softmax_rows_backward(y: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(y.shape(), dy.shape(), "softmax backward shape mismatch");
    let mut dx = Matrix::zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let yr = y.row(r);
        let dyr = dy.row(r);
        let s: f64 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        for (o, (&yv, &dyv)) in dx.row_mut(r).iter_mut().zip(yr.iter().zip(dyr)) {
            *o = yv * (dyv - s);
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let f = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(f.get(1, 0), 10.0);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transpose_variants_agree() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f64 + 0.5);
        let b = Matrix::from_fn(3, 5, |r, c| (r * c) as f64 - 1.0);
        // a^T @ b two ways
        let direct = a.transpose().matmul(&b);
        let fused = a.matmul_at_b(&b);
        assert_eq!(direct, fused);
        // a @ b^T two ways
        let c = Matrix::from_fn(5, 4, |r, c| (r as f64) - (c as f64) * 0.3);
        let direct = a.matmul(&c.transpose());
        let fused = a.matmul_a_bt(&c);
        for (x, y) in direct.as_slice().iter().zip(fused.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        assert_eq!(a.get(0, 0), 5.0);
        a.sub_assign(&b);
        assert_eq!(a.get(1, 1), 3.0);
        a.hadamard_assign(&b);
        assert_eq!(a.get(0, 1), 6.0);
        a.scale(0.5);
        assert_eq!(a.get(0, 0), 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.get(0, 0), 7.0);
    }

    #[test]
    fn broadcast_and_sums() {
        let mut a = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -1.0]);
        a.add_row_broadcast(&bias);
        assert_eq!(a.row(2), &[1.0, -1.0]);
        let s = a.sum_rows();
        assert_eq!(s.as_slice(), &[3.0, -3.0]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    fn norm_is_frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hcat_and_col_slice_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        let b = Matrix::from_fn(2, 3, |r, c| 10.0 + (r * 3 + c) as f64);
        let cat = a.hcat(&b);
        assert_eq!(cat.shape(), (2, 5));
        assert_eq!(cat.col_slice(0, 2), a);
        assert_eq!(cat.col_slice(2, 5), b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        softmax_rows(&mut m);
        for r in 0..2 {
            let s: f64 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(m.row(r).iter().all(|&v| v > 0.0));
        }
        // monotone: larger logits, larger probabilities
        assert!(m.get(0, 2) > m.get(0, 1) && m.get(0, 1) > m.get(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let mut b = Matrix::row_vector(&[101.0, 102.0, 103.0]);
        softmax_rows(&mut a);
        softmax_rows(&mut b);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let mut m = Matrix::row_vector(&[1000.0, 0.0, -1000.0]);
        softmax_rows(&mut m);
        assert!(m.is_finite());
        assert!((m.get(0, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = Matrix::row_vector(&[0.3, -0.7, 1.2, 0.1]);
        // Loss: sum of softmax output times fixed weights.
        let w = [0.5, -1.0, 2.0, 0.25];
        let f = |m: &Matrix| {
            let mut y = m.clone();
            softmax_rows(&mut y);
            y.as_slice().iter().zip(&w).map(|(a, b)| a * b).sum::<f64>()
        };
        let mut y = logits.clone();
        softmax_rows(&mut y);
        let dy = Matrix::row_vector(&w);
        let dx = softmax_rows_backward(&y, &dy);
        let eps = 1e-6;
        for i in 0..4 {
            let mut plus = logits.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[i] -= eps;
            let num = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert!(
                (num - dx.as_slice()[i]).abs() < 1e-7,
                "component {i}: numeric {num} vs analytic {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn parallel_kernels_are_bit_identical_to_serial() {
        // Shapes above PAR_MIN_FLOPS so the parallel path engages.
        let a = Matrix::from_fn(96, 80, |r, c| ((r * 31 + c * 7) % 23) as f64 * 0.37 - 3.0);
        let b = Matrix::from_fn(80, 64, |r, c| ((r * 13 + c * 5) % 19) as f64 * 0.21 - 1.5);
        let bt = b.transpose();
        let serial_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let par_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();

        let serial = serial_pool.install(|| a.matmul(&b));
        let parallel = par_pool.install(|| a.matmul(&b));
        assert_eq!(serial.as_slice(), parallel.as_slice());

        let serial = serial_pool.install(|| a.matmul_a_bt(&bt));
        let parallel = par_pool.install(|| a.matmul_a_bt(&bt));
        assert_eq!(serial.as_slice(), parallel.as_slice());

        // (k, m)^T @ (k, n): 96 x 80 transposed against 96 x 64.
        let c = Matrix::from_fn(96, 64, |r, q| ((r * 3 + q) % 29) as f64 * 0.11 - 1.0);
        let serial = serial_pool.install(|| a.matmul_at_b(&c));
        let parallel = par_pool.install(|| a.matmul_at_b(&c));
        assert_eq!(serial.as_slice(), parallel.as_slice());

        let mut s1 = Matrix::from_fn(128, 96, |r, q| ((r + q * 11) % 37) as f64 * 0.5 - 9.0);
        let mut s2 = s1.clone();
        serial_pool.install(|| softmax_rows(&mut s1));
        par_pool.install(|| softmax_rows(&mut s2));
        assert_eq!(s1.as_slice(), s2.as_slice());
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f64 * 1.5);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
