//! Dense row-major `f64` matrices and the linear-algebra kernel set the
//! layers are built from.
//!
//! The three matmul kernels are cache-blocked (see [`TILE_P`] /
//! [`TILE_J`] / DESIGN.md §13) and fan out across rayon workers once a
//! product is large enough to amortise the dispatch (see
//! [`PAR_MIN_FLOPS`]). Tiled and parallel results are **bit-identical**
//! to the untiled serial kernels: blocking and the row split only change
//! the order in which *different* output elements are produced, while
//! every individual element still accumulates its `k` terms in ascending
//! `p` order — so neither tile size nor thread count ever changes
//! numerics.
//!
//! Each kernel also has a `*_into` variant writing into a caller-owned
//! matrix, so hot loops (see [`crate::workspace::Workspace`]) can run
//! allocation-free; `x.matmul_into(w, &mut out)` produces exactly the
//! bits of `out = x.matmul(w)`.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimum multiply-add count before a matmul fans out across threads;
/// below this the dispatch overhead outweighs the work.
pub const PAR_MIN_FLOPS: usize = 1 << 17;

/// Cache-block depth: `p` (the shared/contraction axis) is processed in
/// runs of this many rows of `rhs`, so one `TILE_P` x `TILE_J` panel of
/// `rhs` (32 KiB at 64x64 f64) stays L1-resident while every output row
/// of the current chunk streams over it.
const TILE_P: usize = 64;

/// Cache-block width: output columns are processed in runs of this many,
/// bounding the write-back segment each inner loop touches.
const TILE_J: usize = 64;

/// Row-block height for [`Matrix::matmul_at_b`]: output rows are
/// processed in short runs so `a.row(p)[i..]` segments are read
/// contiguously while the out block stays cached.
const TILE_I: usize = 8;

/// True when a kernel touching `flops` multiply-adds over `rows` output
/// rows should run in parallel.
#[inline]
fn should_parallelise(rows: usize, flops: usize) -> bool {
    rows > 1 && flops >= PAR_MIN_FLOPS && rayon::current_num_threads() > 1
}

/// Rows per parallel chunk: splitting `m` rows evenly over the worker
/// count (instead of one row per work item) lets the tiled kernels reuse
/// an L1-resident `rhs` panel across all rows of a chunk.
#[inline]
fn rows_per_chunk(m: usize) -> usize {
    m.div_ceil(rayon::current_num_threads()).max(1)
}

/// Error for shape violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError(pub String);

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `(rows, cols)`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError(format!(
                "expected {rows}x{cols}={} values, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a 0-element matrix.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        // lint: allow(panic) — bounds checked by the debug_assert; the
        // innermost hot-path accessor every kernel funnels through
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        // lint: allow(panic) — bounds checked by the debug_assert; the
        // innermost hot-path accessor every kernel funnels through
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        // lint: allow(panic) — bounds checked by the debug_assert; the
        // innermost hot-path accessor every kernel funnels through
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        // lint: allow(panic) — bounds checked by the debug_assert; the
        // innermost hot-path accessor every kernel funnels through
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self @ rhs`; `(m,k) @ (k,n) -> (m,n)`.
    ///
    /// Cache-blocked; large products additionally run row-parallel.
    /// Results are bit-identical to the untiled serial kernel (see the
    /// module docs).
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul`] into a caller-owned output (overwritten), so hot
    /// loops can reuse the allocation. Produces exactly the bits of
    /// `matmul`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: ({},{}) @ ({},{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!((out.rows, out.cols), (m, n), "matmul output shape mismatch");
        out.fill_zero();
        let flops = m.saturating_mul(k).saturating_mul(n);
        if should_parallelise(m, flops) {
            let rows = rows_per_chunk(m);
            out.data
                .par_chunks_mut(rows * n)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    matmul_block_tiled(self, rhs, ci * rows, chunk, TILE_P, TILE_J);
                });
            return;
        }
        matmul_block_tiled(self, rhs, 0, &mut out.data, TILE_P, TILE_J);
    }

    /// `self^T @ rhs`; `(k,m)^T @ (k,n) -> (m,n)`. Avoids materialising the
    /// transpose (used for weight gradients `x^T @ dy`).
    ///
    /// Cache-blocked and row-parallel above the size threshold; every
    /// output element sums its terms in ascending `p` order on all paths,
    /// so results are bit-identical regardless of tile size or thread
    /// count.
    pub fn matmul_at_b(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_at_b_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul_at_b`] into a caller-owned output (overwritten).
    /// Produces exactly the bits of `matmul_at_b`.
    pub fn matmul_at_b_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_at_b shape mismatch: ({},{})^T @ ({},{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        assert_eq!(
            (out.rows, out.cols),
            (m, n),
            "matmul_at_b output shape mismatch"
        );
        out.fill_zero();
        let flops = m.saturating_mul(k).saturating_mul(n);
        if should_parallelise(m, flops) {
            let rows = rows_per_chunk(m);
            out.data
                .par_chunks_mut(rows * n)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    matmul_at_b_block_tiled(self, rhs, ci * rows, chunk, TILE_P, TILE_J);
                });
            return;
        }
        matmul_at_b_block_tiled(self, rhs, 0, &mut out.data, TILE_P, TILE_J);
    }

    /// `self @ rhs^T`; `(m,k) @ (n,k)^T -> (m,n)`. Used for input gradients
    /// `dy @ W^T`. Column-blocked (so a panel of `rhs` rows is reused
    /// across output rows) and row-parallel above the size threshold;
    /// bit-identical to the unblocked serial kernel because each output
    /// element is one sequential dot product either way.
    pub fn matmul_a_bt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_a_bt_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul_a_bt`] into a caller-owned output (overwritten).
    /// Produces exactly the bits of `matmul_a_bt`.
    pub fn matmul_a_bt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_a_bt shape mismatch: ({},{}) @ ({},{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        assert_eq!(
            (out.rows, out.cols),
            (m, n),
            "matmul_a_bt output shape mismatch"
        );
        let flops = m.saturating_mul(k).saturating_mul(n);
        if should_parallelise(m, flops) {
            let rows = rows_per_chunk(m);
            out.data
                .par_chunks_mut(rows * n)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    matmul_a_bt_block_tiled(self, rhs, ci * rows, chunk, TILE_J);
                });
            return;
        }
        matmul_a_bt_block_tiled(self, rhs, 0, &mut out.data, TILE_J);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Transpose into a caller-owned `(cols, rows)` matrix — pure data
    /// movement, so hot loops can turn a `matmul_a_bt(rhs)` into the
    /// faster `matmul(rhs^T)` without touching any floating-point op:
    /// both kernels sum identical terms in ascending contraction order,
    /// so the results are bit-identical.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, self.rows),
            "transpose output shape mismatch"
        );
        for (r, row) in self.data.chunks_exact(self.cols.max(1)).enumerate() {
            for (c, &v) in row.iter().enumerate() {
                // lint: allow(panic) — c < self.cols = out.rows, r < out.cols
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise in-place subtraction.
    pub fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }

    /// In-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise (Hadamard) product, in place.
    pub fn hadamard_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
    }

    /// Element-wise product, allocating.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.hadamard_assign(rhs);
        out
    }

    /// Scales all elements in place.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` element-wise, allocating.
    // lint: cold — legacy allocating API; `_ws` kernels use `map_inplace`. Reaches the hot set only via `.map` conflation with slice iterator adapters.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds a row vector (bias) to every row.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = self.row_mut(r);
            for (a, b) in row.iter_mut().zip(&bias.data) {
                *a += b;
            }
        }
    }

    /// Sums rows into a `(1, cols)` vector (bias gradients).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Self::sum_rows`] into a caller-owned `(1, cols)` output
    /// (overwritten); same bits as the allocating variant.
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (1, self.cols),
            "sum_rows output shape mismatch"
        );
        out.fill_zero();
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Overwrites `self` with `src`'s contents; shapes must match. The
    /// in-place counterpart of `clone()` for reused buffers.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sets every element to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            let (left, right) = out.row_mut(r).split_at_mut(self.cols);
            left.copy_from_slice(self.row(r));
            right.copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Consumes the matrix, returning its backing buffer (for the
    /// workspace pool).
    pub(crate) fn into_raw(self) -> Vec<f64> {
        self.data
    }

    /// Builds a `(rows, cols)` zero matrix on top of a recycled buffer,
    /// reusing its capacity.
    pub(crate) fn from_raw(rows: usize, cols: usize, mut buf: Vec<f64>) -> Matrix {
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Matrix {
            rows,
            cols,
            data: buf,
        }
    }

    /// Column slice `[c0, c1)` as a new matrix.
    pub fn col_slice(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 <= c1 && c1 <= self.cols, "col_slice out of range");
        let mut out = Matrix::zeros(self.rows, c1 - c0);
        for r in 0..self.rows {
            // lint: allow(panic) — range validated by the assert above
            out.row_mut(r).copy_from_slice(&self.row(r)[c0..c1]);
        }
        out
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Tiled `a @ rhs` for the output-row block `[row0, row0 + nr)`, where
/// `nr = out.len() / rhs.cols` and `out` is that block of the output
/// buffer (already zeroed). Shared by the serial and parallel paths so
/// both produce identical bits.
///
/// Loop order is `jb -> pb -> i -> p -> j`: one `tp x tj` panel of `rhs`
/// stays cache-resident while every row of the block streams over it.
/// For a fixed output element `(i, j)` the `p` blocks ascend and `p`
/// ascends within each block, so its terms accumulate in exactly the
/// order of the untiled `i-k-j` kernel — tiling is bit-invisible.
///
/// The `p` loop is unrolled by four with an explicit left-to-right
/// addition chain per output element, so four `rhs` rows are folded into
/// one load/store of the output segment. The chain keeps the exact
/// ascending-`p` addition order, and a `0.0 * b` term adds a signed zero,
/// which cannot change an accumulator that is never `-0.0` (it starts at
/// `+0.0` and IEEE round-to-nearest addition only yields `-0.0` from
/// `-0.0 + -0.0`) — so bits match the one-`p`-at-a-time kernel for all
/// finite inputs.
fn matmul_block_tiled(
    a: &Matrix,
    rhs: &Matrix,
    row0: usize,
    out: &mut [f64],
    tp: usize,
    tj: usize,
) {
    let k = a.cols;
    let n = rhs.cols;
    if n == 0 {
        return;
    }
    let nr = out.len() / n;
    for jb in (0..n).step_by(tj) {
        let jhi = (jb + tj).min(n);
        for pb in (0..k).step_by(tp) {
            let phi = (pb + tp).min(k);
            // lint: allow(panic) — pb < phi <= k = rhs.rows, rows contiguous
            let b_rows = &rhs.data[pb * n..phi * n];
            for i in 0..nr {
                let a_row = a.row(row0 + i);
                // lint: allow(panic) — pb < phi <= k = a.cols
                let a_seg = &a_row[pb..phi];
                // lint: allow(panic) — i < nr and jhi <= n keep the range
                // inside this row block
                let out_row = &mut out[i * n + jb..i * n + jhi];
                let mut a_quads = a_seg.chunks_exact(4);
                let b_quads = b_rows.chunks_exact(4 * n);
                for (aq, bq) in a_quads.by_ref().zip(b_quads) {
                    let &[a0, a1, a2, a3] = aq else { continue };
                    if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                        continue;
                    }
                    let (b0, rest) = bq.split_at(n);
                    let (b1, rest) = rest.split_at(n);
                    let (b2, b3) = rest.split_at(n);
                    // lint: allow(panic) — jhi <= n = rhs.cols
                    let (c0, c1) = (&b0[jb..jhi], &b1[jb..jhi]);
                    let (c2, c3) = (&b2[jb..jhi], &b3[jb..jhi]);
                    let cols = out_row.iter_mut().zip(c0).zip(c1).zip(c2).zip(c3);
                    for ((((o, &v0), &v1), &v2), &v3) in cols {
                        *o = (((*o + a0 * v0) + a1 * v1) + a2 * v2) + a3 * v3;
                    }
                }
                let rem_p0 = phi - a_quads.remainder().len();
                for (p, &av) in a_quads.remainder().iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    // lint: allow(panic) — jhi <= n = rhs.cols
                    let b_seg = &rhs.row(rem_p0 + p)[jb..jhi];
                    for (o, &b) in out_row.iter_mut().zip(b_seg) {
                        *o += av * b;
                    }
                }
            }
        }
    }
}

/// Tiled `a^T @ rhs` for the output-row block `[row0, row0 + nr)`;
/// `a` is `(k, m)`, the block covers output columns of `a` (= rows of
/// `a^T`). `out` is the pre-zeroed block buffer.
///
/// Loop order is `jb -> pb -> ib -> p -> i -> j`: reading
/// `a.row(p)[row0+ib..]` keeps the strided-transpose access contiguous,
/// while the `ib` blocking keeps the touched output rows cache-resident
/// across a `p` run. Per output element the `p` order is ascending, so
/// results match the untiled kernel bit-for-bit.
///
/// Like [`matmul_block_tiled`], `p` is unrolled by four with an explicit
/// ascending addition chain per output element — same order, same bits
/// (see the signed-zero argument there), a quarter of the output-row
/// traffic.
fn matmul_at_b_block_tiled(
    a: &Matrix,
    rhs: &Matrix,
    row0: usize,
    out: &mut [f64],
    tp: usize,
    tj: usize,
) {
    let k = a.rows;
    let ma = a.cols;
    let n = rhs.cols;
    if n == 0 {
        return;
    }
    let nr = out.len() / n;
    for jb in (0..n).step_by(tj) {
        let jhi = (jb + tj).min(n);
        for pb in (0..k).step_by(tp) {
            let phi = (pb + tp).min(k);
            // lint: allow(panic) — pb < phi <= k = a.rows, rows contiguous
            let a_rows = &a.data[pb * ma..phi * ma];
            // lint: allow(panic) — pb < phi <= k = rhs.rows, rows contiguous
            let b_rows = &rhs.data[pb * n..phi * n];
            for ib in (0..nr).step_by(TILE_I) {
                let ihi = (ib + TILE_I).min(nr);
                let mut a_quads = a_rows.chunks_exact(4 * ma);
                let b_quads = b_rows.chunks_exact(4 * n);
                for (ar, br) in a_quads.by_ref().zip(b_quads) {
                    let (ar0, rest) = ar.split_at(ma);
                    let (ar1, rest) = rest.split_at(ma);
                    let (ar2, ar3) = rest.split_at(ma);
                    let (b0, rest) = br.split_at(n);
                    let (b1, rest) = rest.split_at(n);
                    let (b2, b3) = rest.split_at(n);
                    // lint: allow(panic) — row0 + ihi <= m = a.cols
                    let (c0, c1) = (&ar0[row0 + ib..row0 + ihi], &ar1[row0 + ib..row0 + ihi]);
                    let (c2, c3) = (&ar2[row0 + ib..row0 + ihi], &ar3[row0 + ib..row0 + ihi]);
                    let a_cols = c0.iter().zip(c1).zip(c2).zip(c3);
                    for (di, (((&a0, &a1), &a2), &a3)) in a_cols.enumerate() {
                        if a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                            continue;
                        }
                        let i = ib + di;
                        // lint: allow(panic) — i < nr and jhi <= n keep
                        // the range inside this row block
                        let out_row = &mut out[i * n + jb..i * n + jhi];
                        // lint: allow(panic) — jhi <= n = rhs.cols
                        let (c0, c1) = (&b0[jb..jhi], &b1[jb..jhi]);
                        let (c2, c3) = (&b2[jb..jhi], &b3[jb..jhi]);
                        let cols = out_row.iter_mut().zip(c0).zip(c1).zip(c2).zip(c3);
                        for ((((o, &v0), &v1), &v2), &v3) in cols {
                            *o = (((*o + a0 * v0) + a1 * v1) + a2 * v2) + a3 * v3;
                        }
                    }
                }
                let rem = a_quads.remainder();
                let rem_p0 = phi - rem.len() / ma.max(1);
                for (off, ar) in rem.chunks_exact(ma).enumerate() {
                    let p = rem_p0 + off;
                    // lint: allow(panic) — row0 + ihi <= m = a.cols
                    let a_seg = &ar[row0 + ib..row0 + ihi];
                    // lint: allow(panic) — jhi <= n = rhs.cols
                    let b_seg = &rhs.row(p)[jb..jhi];
                    for (di, &av) in a_seg.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let i = ib + di;
                        // lint: allow(panic) — i < nr and jhi <= n keep
                        // the range inside this row block
                        let out_row = &mut out[i * n + jb..i * n + jhi];
                        for (o, &b) in out_row.iter_mut().zip(b_seg) {
                            *o += av * b;
                        }
                    }
                }
            }
        }
    }
}

/// Blocked `a @ rhs^T` for the output-row block `[row0, row0 + nr)`.
/// Only the output columns are blocked (a `tj`-row panel of `rhs` is
/// reused across every row of the block); each element is one sequential
/// dot product, identical to the unblocked kernel.
///
/// A 2x4 register block is computed at once: two output rows share the
/// four loaded `rhs` rows, giving eight *independent* accumulator chains
/// from six loads per step — a single dot product is a serial FP-add
/// dependency chain and runs at add-latency speed, while eight
/// interleaved chains fill the pipeline and the row-sharing halves the
/// load pressure. Each chain still sums its own terms in ascending `p`
/// order, so every element's bits match the plain `dot`.
fn matmul_a_bt_block_tiled(a: &Matrix, rhs: &Matrix, row0: usize, out: &mut [f64], tj: usize) {
    let n = rhs.rows;
    let kc = rhs.cols;
    if n == 0 {
        return;
    }
    if kc == 0 {
        // empty contraction: every dot product is 0.0
        for o in out.iter_mut() {
            *o = 0.0;
        }
        return;
    }
    for jb in (0..n).step_by(tj) {
        let jhi = (jb + tj).min(n);
        // lint: allow(panic) — jb < jhi <= n = rhs.rows, rows contiguous
        let b_rows = &rhs.data[jb * kc..jhi * kc];
        let mut out_rows = out.chunks_exact_mut(n);
        let mut i = 0usize;
        while let Some(or0) = out_rows.next() {
            let Some(or1) = out_rows.next() else {
                // odd trailing row: four-column chains without the pair
                let a_row = a.row(row0 + i);
                // lint: allow(panic) — jhi <= n bounds the row segment
                let o_row = &mut or0[jb..jhi];
                let mut o_quads = o_row.chunks_exact_mut(4);
                let mut b_quads = b_rows.chunks_exact(4 * kc);
                for (oq, bq) in o_quads.by_ref().zip(b_quads.by_ref()) {
                    let (r0, rest) = bq.split_at(kc);
                    let (r1, rest) = rest.split_at(kc);
                    let (r2, r3) = rest.split_at(kc);
                    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                    let rows = a_row.iter().zip(r0).zip(r1).zip(r2).zip(r3);
                    for ((((&av, &v0), &v1), &v2), &v3) in rows {
                        s0 += av * v0;
                        s1 += av * v1;
                        s2 += av * v2;
                        s3 += av * v3;
                    }
                    if let [o0, o1, o2, o3] = oq {
                        (*o0, *o1, *o2, *o3) = (s0, s1, s2, s3);
                    }
                }
                let b_rem = b_quads.remainder().chunks_exact(kc);
                for (o, r) in o_quads.into_remainder().iter_mut().zip(b_rem) {
                    *o = dot(a_row, r);
                }
                break;
            };
            let a0_row = a.row(row0 + i);
            let a1_row = a.row(row0 + i + 1);
            // lint: allow(panic) — jhi <= n bounds both row segments
            let o0_row = &mut or0[jb..jhi];
            // lint: allow(panic) — jhi <= n bounds both row segments
            let o1_row = &mut or1[jb..jhi];
            let mut o0_quads = o0_row.chunks_exact_mut(4);
            let mut o1_quads = o1_row.chunks_exact_mut(4);
            let mut b_quads = b_rows.chunks_exact(4 * kc);
            for ((oq0, oq1), bq) in o0_quads
                .by_ref()
                .zip(o1_quads.by_ref())
                .zip(b_quads.by_ref())
            {
                let (r0, rest) = bq.split_at(kc);
                let (r1, rest) = rest.split_at(kc);
                let (r2, r3) = rest.split_at(kc);
                let (mut s00, mut s01, mut s02, mut s03) = (0.0, 0.0, 0.0, 0.0);
                let (mut s10, mut s11, mut s12, mut s13) = (0.0, 0.0, 0.0, 0.0);
                let rows = a0_row.iter().zip(a1_row).zip(r0).zip(r1).zip(r2).zip(r3);
                for (((((&a0, &a1), &v0), &v1), &v2), &v3) in rows {
                    s00 += a0 * v0;
                    s01 += a0 * v1;
                    s02 += a0 * v2;
                    s03 += a0 * v3;
                    s10 += a1 * v0;
                    s11 += a1 * v1;
                    s12 += a1 * v2;
                    s13 += a1 * v3;
                }
                if let [o0, o1, o2, o3] = oq0 {
                    (*o0, *o1, *o2, *o3) = (s00, s01, s02, s03);
                }
                if let [o0, o1, o2, o3] = oq1 {
                    (*o0, *o1, *o2, *o3) = (s10, s11, s12, s13);
                }
            }
            let b_rem = b_quads.remainder().chunks_exact(kc);
            let tail = o0_quads
                .into_remainder()
                .iter_mut()
                .zip(o1_quads.into_remainder().iter_mut())
                .zip(b_rem);
            for ((o0, o1), r) in tail {
                *o0 = dot(a0_row, r);
                *o1 = dot(a1_row, r);
            }
            i += 2;
        }
    }
}

/// Row-wise softmax in place; numerically stabilised by row-max shifting.
/// Rows are independent, so large matrices run row-parallel with
/// bit-identical results.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    // An exp costs roughly an order of magnitude more than a multiply-add,
    // so weight elements accordingly against the flop threshold.
    if cols > 0 && should_parallelise(m.rows(), m.len().saturating_mul(16)) {
        m.as_mut_slice()
            .par_chunks_mut(cols)
            .for_each(softmax_row_inplace);
        return;
    }
    for r in 0..m.rows() {
        softmax_row_inplace(m.row_mut(r));
    }
}

#[inline]
fn softmax_row_inplace(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Backward pass of row-wise softmax: given the softmax output `y` and the
/// upstream gradient `dy`, returns `dx` where
/// `dx = y * (dy - sum(dy * y, per row))`.
pub fn softmax_rows_backward(y: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(y.shape(), dy.shape(), "softmax backward shape mismatch");
    let mut dx = Matrix::zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let yr = y.row(r);
        let dyr = dy.row(r);
        let s: f64 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        for (o, (&yv, &dyv)) in dx.row_mut(r).iter_mut().zip(yr.iter().zip(dyr)) {
            *o = yv * (dyv - s);
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Textbook `i-j-k` reference, deliberately untiled and without the
    /// `a == 0` skip. Each output element still sums in ascending `p`
    /// order, which is the invariant the production kernels preserve.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|p| a.get(i, p) * b.get(p, j)).sum()
        })
    }

    fn naive_at_b(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.cols(), b.cols(), |i, j| {
            (0..a.rows()).map(|p| a.get(p, i) * b.get(p, j)).sum()
        })
    }

    fn naive_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.rows(), |i, j| {
            (0..a.cols()).map(|p| a.get(i, p) * b.get(j, p)).sum()
        })
    }

    /// Deterministic test fill with exact zeros injected (every fifth
    /// element) so the kernels' sparsity skip is exercised.
    fn patterned(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            if (r * cols + c + salt).is_multiple_of(5) {
                0.0
            } else {
                ((r * 31 + c * 7 + salt) % 23) as f64 * 0.37 - 3.0
            }
        })
    }

    const TILE_CHOICES: [usize; 4] = [1, 3, 8, 64];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// All three tiled block kernels are bit-identical to the naive
        /// reference for arbitrary shapes and tile sizes.
        fn tiled_kernels_match_naive(
            m in 1usize..24,
            k in 1usize..24,
            n in 1usize..24,
            tp_ix in 0usize..4,
            tj_ix in 0usize..4,
            salt in 0usize..1000,
        ) {
            let (tp, tj) = (TILE_CHOICES[tp_ix], TILE_CHOICES[tj_ix]);
            let a = patterned(m, k, salt);
            let b = patterned(k, n, salt + 1);
            let at = patterned(k, m, salt + 2);
            let bt = patterned(n, k, salt + 3);

            let mut out = Matrix::zeros(m, n);
            matmul_block_tiled(&a, &b, 0, out.as_mut_slice(), tp, tj);
            prop_assert_eq!(out.as_slice(), naive_matmul(&a, &b).as_slice());

            let mut out = Matrix::zeros(m, n);
            matmul_at_b_block_tiled(&at, &b, 0, out.as_mut_slice(), tp, tj);
            prop_assert_eq!(out.as_slice(), naive_at_b(&at, &b).as_slice());

            let mut out = Matrix::zeros(m, n);
            matmul_a_bt_block_tiled(&a, &bt, 0, out.as_mut_slice(), tj);
            prop_assert_eq!(out.as_slice(), naive_a_bt(&a, &bt).as_slice());
        }

        /// The public kernels (fixed production tiles, automatic parallel
        /// dispatch) match the naive reference at 1 and 4 threads; shapes
        /// are drawn large enough that the parallel path engages.
        fn public_kernels_match_naive_any_threads(
            m in 60usize..110,
            k in 40usize..90,
            n in 40usize..80,
            salt in 0usize..1000,
        ) {
            let a = patterned(m, k, salt);
            let b = patterned(k, n, salt + 1);
            let at = patterned(k, m, salt + 2);
            let bt = patterned(n, k, salt + 3);
            let want = naive_matmul(&a, &b);
            let want_at = naive_at_b(&at, &b);
            let want_bt = naive_a_bt(&a, &bt);
            for threads in [1usize, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let (got, got_at, got_bt) =
                    pool.install(|| (a.matmul(&b), at.matmul_at_b(&b), a.matmul_a_bt(&bt)));
                prop_assert_eq!(got.as_slice(), want.as_slice());
                prop_assert_eq!(got_at.as_slice(), want_at.as_slice());
                prop_assert_eq!(got_bt.as_slice(), want_bt.as_slice());
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_kernels() {
        let a = patterned(37, 29, 4);
        let b = patterned(29, 21, 5);
        let at = patterned(29, 37, 6);
        let bt = patterned(21, 29, 7);
        // Dirty buffers: _into must fully overwrite.
        let mut out = Matrix::filled(37, 21, f64::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let mut out = Matrix::filled(37, 21, f64::NAN);
        at.matmul_at_b_into(&b, &mut out);
        assert_eq!(out, at.matmul_at_b(&b));
        let mut out = Matrix::filled(37, 21, f64::NAN);
        a.matmul_a_bt_into(&bt, &mut out);
        assert_eq!(out, a.matmul_a_bt(&bt));
        let mut out = Matrix::filled(1, 29, f64::NAN);
        a.sum_rows_into(&mut out);
        assert_eq!(out, a.sum_rows());
    }

    #[test]
    fn copy_from_and_raw_roundtrip() {
        let a = patterned(5, 7, 1);
        let mut dst = Matrix::zeros(5, 7);
        dst.copy_from(&a);
        assert_eq!(dst, a);
        let buf = dst.into_raw();
        let cap = buf.capacity();
        let back = Matrix::from_raw(3, 4, buf);
        assert_eq!(back, Matrix::zeros(3, 4));
        assert!(back.data.capacity() >= cap.min(12));
    }

    #[test]
    fn constructors_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let f = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(f.get(1, 0), 10.0);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transpose_variants_agree() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f64 + 0.5);
        let b = Matrix::from_fn(3, 5, |r, c| (r * c) as f64 - 1.0);
        // a^T @ b two ways
        let direct = a.transpose().matmul(&b);
        let fused = a.matmul_at_b(&b);
        assert_eq!(direct, fused);
        // a @ b^T two ways
        let c = Matrix::from_fn(5, 4, |r, c| (r as f64) - (c as f64) * 0.3);
        let direct = a.matmul(&c.transpose());
        let fused = a.matmul_a_bt(&c);
        for (x, y) in direct.as_slice().iter().zip(fused.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        assert_eq!(a.get(0, 0), 5.0);
        a.sub_assign(&b);
        assert_eq!(a.get(1, 1), 3.0);
        a.hadamard_assign(&b);
        assert_eq!(a.get(0, 1), 6.0);
        a.scale(0.5);
        assert_eq!(a.get(0, 0), 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.get(0, 0), 7.0);
    }

    #[test]
    fn broadcast_and_sums() {
        let mut a = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -1.0]);
        a.add_row_broadcast(&bias);
        assert_eq!(a.row(2), &[1.0, -1.0]);
        let s = a.sum_rows();
        assert_eq!(s.as_slice(), &[3.0, -3.0]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    fn norm_is_frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((a.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hcat_and_col_slice_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        let b = Matrix::from_fn(2, 3, |r, c| 10.0 + (r * 3 + c) as f64);
        let cat = a.hcat(&b);
        assert_eq!(cat.shape(), (2, 5));
        assert_eq!(cat.col_slice(0, 2), a);
        assert_eq!(cat.col_slice(2, 5), b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        softmax_rows(&mut m);
        for r in 0..2 {
            let s: f64 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(m.row(r).iter().all(|&v| v > 0.0));
        }
        // monotone: larger logits, larger probabilities
        assert!(m.get(0, 2) > m.get(0, 1) && m.get(0, 1) > m.get(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let mut b = Matrix::row_vector(&[101.0, 102.0, 103.0]);
        softmax_rows(&mut a);
        softmax_rows(&mut b);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let mut m = Matrix::row_vector(&[1000.0, 0.0, -1000.0]);
        softmax_rows(&mut m);
        assert!(m.is_finite());
        assert!((m.get(0, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = Matrix::row_vector(&[0.3, -0.7, 1.2, 0.1]);
        // Loss: sum of softmax output times fixed weights.
        let w = [0.5, -1.0, 2.0, 0.25];
        let f = |m: &Matrix| {
            let mut y = m.clone();
            softmax_rows(&mut y);
            y.as_slice().iter().zip(&w).map(|(a, b)| a * b).sum::<f64>()
        };
        let mut y = logits.clone();
        softmax_rows(&mut y);
        let dy = Matrix::row_vector(&w);
        let dx = softmax_rows_backward(&y, &dy);
        let eps = 1e-6;
        for i in 0..4 {
            let mut plus = logits.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[i] -= eps;
            let num = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert!(
                (num - dx.as_slice()[i]).abs() < 1e-7,
                "component {i}: numeric {num} vs analytic {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn parallel_kernels_are_bit_identical_to_serial() {
        // Shapes above PAR_MIN_FLOPS so the parallel path engages.
        let a = Matrix::from_fn(96, 80, |r, c| ((r * 31 + c * 7) % 23) as f64 * 0.37 - 3.0);
        let b = Matrix::from_fn(80, 64, |r, c| ((r * 13 + c * 5) % 19) as f64 * 0.21 - 1.5);
        let bt = b.transpose();
        let serial_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let par_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();

        let serial = serial_pool.install(|| a.matmul(&b));
        let parallel = par_pool.install(|| a.matmul(&b));
        assert_eq!(serial.as_slice(), parallel.as_slice());

        let serial = serial_pool.install(|| a.matmul_a_bt(&bt));
        let parallel = par_pool.install(|| a.matmul_a_bt(&bt));
        assert_eq!(serial.as_slice(), parallel.as_slice());

        // (k, m)^T @ (k, n): 96 x 80 transposed against 96 x 64.
        let c = Matrix::from_fn(96, 64, |r, q| ((r * 3 + q) % 29) as f64 * 0.11 - 1.0);
        let serial = serial_pool.install(|| a.matmul_at_b(&c));
        let parallel = par_pool.install(|| a.matmul_at_b(&c));
        assert_eq!(serial.as_slice(), parallel.as_slice());

        let mut s1 = Matrix::from_fn(128, 96, |r, q| ((r + q * 11) % 37) as f64 * 0.5 - 9.0);
        let mut s2 = s1.clone();
        serial_pool.install(|| softmax_rows(&mut s1));
        par_pool.install(|| softmax_rows(&mut s2));
        assert_eq!(s1.as_slice(), s2.as_slice());
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f64 * 1.5);
        let json = serde_json::to_string(&a).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
