//! Finite-difference gradient checking.
//!
//! Every layer in this crate ships a test that compares its analytic
//! backward pass against central finite differences of the scalar loss
//! `L(y) = 0.5 * ||y||^2` (whose upstream gradient is simply `y`). A layer
//! that passes these checks computes exact gradients, which is what makes
//! the training results in `ovs-core` meaningful.

use crate::layers::{Layer, SeqLayer};
use crate::matrix::Matrix;
use crate::tensor3::Tensor3;

/// Relative/absolute comparison used by all checks.
fn close(analytic: f64, numeric: f64, tol: f64) -> bool {
    let denom = analytic.abs().max(numeric.abs()).max(1.0);
    (analytic - numeric).abs() / denom <= tol
}

fn half_sq_matrix(y: &Matrix) -> f64 {
    0.5 * y.as_slice().iter().map(|v| v * v).sum::<f64>()
}

fn half_sq_tensor(y: &Tensor3) -> f64 {
    0.5 * y.as_slice().iter().map(|v| v * v).sum::<f64>()
}

/// Adds `delta` to parameter `pi`'s element `idx` of a flat layer.
fn perturb_flat(layer: &mut dyn Layer, pi: usize, idx: usize, delta: f64) {
    let mut seen = 0usize;
    layer.visit_params(&mut |p, _| {
        if seen == pi {
            p.as_mut_slice()[idx] += delta;
        }
        seen += 1;
    });
}

/// Adds `delta` to parameter `pi`'s element `idx` of a sequence layer.
fn perturb_seq(layer: &mut dyn SeqLayer, pi: usize, idx: usize, delta: f64) {
    let mut seen = 0usize;
    layer.visit_params(&mut |p, _| {
        if seen == pi {
            p.as_mut_slice()[idx] += delta;
        }
        seen += 1;
    });
}

/// Checks `d loss / d input` of a flat layer. Returns true when every
/// component agrees within `tol`.
pub fn check_layer_input(layer: &mut dyn Layer, x: &Matrix, eps: f64, tol: f64) -> bool {
    let y = layer.forward(x, false);
    let dx = layer.backward(&y);
    for idx in 0..x.len() {
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= eps;
        let lp = half_sq_matrix(&layer.forward(&xp, false));
        let lm = half_sq_matrix(&layer.forward(&xm, false));
        let numeric = (lp - lm) / (2.0 * eps);
        if !close(dx.as_slice()[idx], numeric, tol) {
            eprintln!(
                "input grad mismatch at {idx}: analytic {} vs numeric {numeric}",
                dx.as_slice()[idx]
            );
            return false;
        }
    }
    true
}

/// Checks `d loss / d params` of a flat layer.
pub fn check_layer_params(layer: &mut dyn Layer, x: &Matrix, eps: f64, tol: f64) -> bool {
    layer.zero_grad();
    let y = layer.forward(x, false);
    layer.backward(&y);
    // Snapshot analytic gradients.
    let mut grads: Vec<Matrix> = Vec::new();
    layer.visit_params(&mut |_, g| grads.push(g.clone()));

    let mut ok = true;
    for (pi, grad) in grads.iter().enumerate() {
        for idx in 0..grad.len() {
            perturb_flat(layer, pi, idx, eps);
            let lp = half_sq_matrix(&layer.forward(x, false));
            perturb_flat(layer, pi, idx, -2.0 * eps);
            let lm = half_sq_matrix(&layer.forward(x, false));
            perturb_flat(layer, pi, idx, eps); // restore
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.as_slice()[idx];
            if !close(analytic, numeric, tol) {
                eprintln!("param {pi}[{idx}] mismatch: analytic {analytic} vs numeric {numeric}");
                ok = false;
            }
        }
    }
    ok
}

/// Checks `d loss / d input` of a sequence layer.
pub fn check_seq_layer_input(layer: &mut dyn SeqLayer, x: &Tensor3, eps: f64, tol: f64) -> bool {
    let y = layer.forward(x, false);
    let dx = layer.backward(&y);
    for idx in 0..x.as_slice().len() {
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= eps;
        let lp = half_sq_tensor(&layer.forward(&xp, false));
        let lm = half_sq_tensor(&layer.forward(&xm, false));
        let numeric = (lp - lm) / (2.0 * eps);
        if !close(dx.as_slice()[idx], numeric, tol) {
            eprintln!(
                "seq input grad mismatch at {idx}: analytic {} vs numeric {numeric}",
                dx.as_slice()[idx]
            );
            return false;
        }
    }
    true
}

/// Checks `d loss / d params` of a sequence layer.
pub fn check_seq_layer_params(layer: &mut dyn SeqLayer, x: &Tensor3, eps: f64, tol: f64) -> bool {
    layer.zero_grad();
    let y = layer.forward(x, false);
    layer.backward(&y);
    let mut grads: Vec<Matrix> = Vec::new();
    layer.visit_params(&mut |_, g| grads.push(g.clone()));

    let mut ok = true;
    for (pi, grad) in grads.iter().enumerate() {
        for idx in 0..grad.len() {
            perturb_seq(layer, pi, idx, eps);
            let lp = half_sq_tensor(&layer.forward(x, false));
            perturb_seq(layer, pi, idx, -2.0 * eps);
            let lm = half_sq_tensor(&layer.forward(x, false));
            perturb_seq(layer, pi, idx, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.as_slice()[idx];
            if !close(analytic, numeric, tol) {
                eprintln!(
                    "seq param {pi}[{idx}] mismatch: analytic {analytic} vs numeric {numeric}"
                );
                ok = false;
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::rng::Rng64;

    /// A deliberately wrong layer: backward scales the true gradient.
    struct Broken(Dense);

    impl Layer for Broken {
        fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
            self.0.forward(x, train)
        }
        fn backward(&mut self, dy: &Matrix) -> Matrix {
            let mut dx = self.0.backward(dy);
            dx.scale(1.5); // wrong on purpose
            dx
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
            self.0.visit_params(f);
        }
    }

    #[test]
    fn detects_correct_gradients() {
        let mut rng = Rng64::new(0);
        let mut d = Dense::new(3, 2, &mut rng);
        let mut x = Matrix::zeros(2, 3);
        rng.fill_normal(x.as_mut_slice());
        assert!(check_layer_input(&mut d, &x, 1e-6, 1e-6));
    }

    #[test]
    fn detects_broken_gradients() {
        let mut rng = Rng64::new(0);
        let mut b = Broken(Dense::new(3, 2, &mut rng));
        let mut x = Matrix::zeros(2, 3);
        rng.fill_normal(x.as_mut_slice());
        assert!(!check_layer_input(&mut b, &x, 1e-6, 1e-6));
    }

    #[test]
    fn close_uses_relative_tolerance() {
        assert!(close(1000.0, 1000.0001, 1e-6));
        assert!(!close(1.0, 1.1, 1e-6));
        assert!(close(0.0, 1e-9, 1e-6));
    }
}
