//! Microscopic-simulator throughput: full runs on the synthetic grid and a
//! mid-size city, the substrate cost behind every experiment table.

use criterion::{criterion_group, criterion_main, Criterion};
use roadnet::presets::{hangzhou, synthetic_grid};
use roadnet::{OdSet, TodTensor};
use simulator::{SimConfig, Simulation};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);

    let grid = synthetic_grid();
    let grid_ods = OdSet::all_pairs(&grid);
    let grid_tod = TodTensor::filled(grid_ods.len(), 4, 5.0);
    let cfg = SimConfig::default()
        .with_intervals(4)
        .with_interval_s(300.0);
    group.bench_function("grid3x3_20min", |b| {
        let mut sim = Simulation::new(&grid, &grid_ods, cfg.clone()).unwrap();
        b.iter(|| sim.run(&grid_tod).unwrap());
    });

    let city = hangzhou().network;
    let city_ods = OdSet::all_pairs(&city);
    let city_tod = TodTensor::filled(city_ods.len(), 4, 3.0);
    group.bench_function("hangzhou_20min", |b| {
        let mut sim = Simulation::new(&city, &city_ods, cfg.clone()).unwrap();
        b.iter(|| sim.run(&city_tod).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
