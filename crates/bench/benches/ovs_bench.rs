//! OVS module costs: the dynamic-attention TOD->volume mapping and one
//! full generative forward/backward pass.

use criterion::{criterion_group, criterion_main, Criterion};
use neural::rng::Rng64;
use neural::Matrix;
use ovs_core::routes::RouteTable;
use ovs_core::tod2v::TodVolumeMapping;
use ovs_core::{OvsConfig, OvsModel};
use roadnet::presets::{manhattan, synthetic_grid};
use roadnet::OdSet;

fn bench_ovs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ovs");
    group.sample_size(20);

    // Attention on the synthetic grid (72 ODs, 24 links).
    let grid = synthetic_grid();
    let grid_ods = OdSet::all_pairs(&grid);
    let cfg = OvsConfig::default();
    let routes = RouteTable::build(&grid, &grid_ods, 600.0).unwrap();
    let mut rng = Rng64::new(0);
    let mut tod2v = TodVolumeMapping::new(routes, 12, &cfg, &mut rng);
    let g = Matrix::filled(grid_ods.len(), 12, 8.0);
    group.bench_function("attention_forward_backward_grid", |b| {
        b.iter(|| {
            let q = tod2v.forward(&g, true);
            tod2v.backward(&q)
        })
    });

    // Full generative pass on Manhattan (72 ODs, 360 links).
    let city = manhattan().network;
    let city_ods = OdSet::all_pairs(&city);
    let mut model = OvsModel::new(&city, &city_ods, 12, 600.0, cfg).unwrap();
    group.bench_function("full_forward_manhattan", |b| {
        b.iter(|| model.forward_full(true))
    });

    group.finish();
}

criterion_group!(benches, bench_ovs);
criterion_main!(benches);
