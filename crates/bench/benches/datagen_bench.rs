//! Parallel data-generation throughput: `Dataset::assemble` builds its
//! training corpus with one independent RNG stream and one simulation
//! clone per sample, so the corpus parallelises perfectly. This bench
//! pins the pool to 1 and 4 workers on the same spec — the acceptance
//! bar for the parallel layer is >= 2x on 4 threads with bit-identical
//! output (asserted in `datagen/tests/parallel_determinism.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use roadnet::Parallelism;

fn spec() -> DatasetSpec {
    DatasetSpec {
        t: 4,
        interval_s: 120.0,
        train_samples: 16,
        demand_scale: 0.05,
        seed: 7,
    }
}

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);

    let spec = spec();
    group.bench_function("assemble_16_samples_serial", |b| {
        b.iter(|| {
            Parallelism::Serial
                .run(|| Dataset::synthetic(TodPattern::Gaussian, &spec))
                .unwrap()
        });
    });
    group.bench_function("assemble_16_samples_4_threads", |b| {
        b.iter(|| {
            Parallelism::Threads(4)
                .run(|| Dataset::synthetic(TodPattern::Gaussian, &spec))
                .unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_datagen);
criterion_main!(benches);
