//! Routing costs: Dijkstra and Yen's k-shortest on the Manhattan preset.

use criterion::{criterion_group, criterion_main, Criterion};
use roadnet::presets::manhattan;
use roadnet::routing::{fastest_path, k_shortest_paths, shortest_path};
use roadnet::NodeId;

fn bench_routing(c: &mut Criterion) {
    let net = manhattan().network;
    let from = NodeId(0);
    let to = NodeId(net.num_nodes() - 1);
    let mut group = c.benchmark_group("routing");

    group.bench_function("dijkstra_shortest_manhattan", |b| {
        b.iter(|| shortest_path(&net, from, to).unwrap())
    });
    group.bench_function("dijkstra_fastest_manhattan", |b| {
        b.iter(|| fastest_path(&net, from, to).unwrap())
    });
    group.bench_function("yen_k4_manhattan", |b| {
        b.iter(|| k_shortest_paths(&net, from, to, 4, &|l| l.length_m).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
