//! Neural-layer hot paths: the matmul kernel, LSTM and Conv1d
//! forward/backward at the shapes the OVS pipeline uses.

use criterion::{criterion_group, criterion_main, Criterion};
use neural::layers::{Conv1d, Lstm, SeqLayer};
use neural::rng::Rng64;
use neural::{Matrix, Tensor3};

fn bench_neural(c: &mut Criterion) {
    let mut rng = Rng64::new(0);
    let mut group = c.benchmark_group("neural");

    let a = Matrix::from_fn(128, 64, |r, q| ((r * 31 + q) % 17) as f64 * 0.1);
    let b = Matrix::from_fn(64, 128, |r, q| ((r * 13 + q) % 11) as f64 * 0.1);
    group.bench_function("matmul_128x64x128", |bch| bch.iter(|| a.matmul(&b)));

    // V2S shape: batch = links (360 for Manhattan), T = 12, hidden 32.
    let mut lstm = Lstm::new(1, 32, &mut rng);
    let mut x = Tensor3::zeros(360, 12, 1);
    rng.fill_normal(x.as_mut_slice());
    group.bench_function("lstm_forward_360x12_h32", |bch| {
        bch.iter(|| lstm.forward(&x, true))
    });
    group.bench_function("lstm_forward_backward_360x12_h32", |bch| {
        bch.iter(|| {
            let y = lstm.forward(&x, true);
            lstm.backward(&y)
        })
    });

    // Route-e shape: batch = OD pairs (72), T = 12.
    let mut conv = Conv1d::new(1, 4, 3, &mut rng);
    let mut xc = Tensor3::zeros(72, 12, 1);
    rng.fill_normal(xc.as_mut_slice());
    group.bench_function("conv1d_forward_backward_72x12", |bch| {
        bch.iter(|| {
            let y = conv.forward(&xc, true);
            conv.backward(&y)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_neural);
criterion_main!(benches);
