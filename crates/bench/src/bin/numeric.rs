//! Numeric-core raw-speed trajectory: matmul throughput, training
//! steps/sec, simulator ticks/sec, and end-to-end train+simulate
//! wall-clock — written to `results/BENCH_numeric.json` on every run so
//! the speed of the numeric core stays reviewable over time.
//!
//! The workloads are fixed (profile-independent) so numbers are
//! comparable across commits; the profile only decides whether the
//! Manhattan end-to-end run is included (`quick` skips it, CI uses
//! `quick`). The `baseline` block holds the numbers captured at the
//! pre-optimisation seed commit on the same machine class, so the
//! report carries its own before/after table.
//!
//! Run: `CITYOD_PROFILE=standard cargo run --release -p bench --bin numeric`

use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use neural::layers::{
    ActKind, Dense, Lstm, SeqActivation, SeqLayer, SeqSequential, TimeDistributed,
};
use neural::optim::{Adam, Optimizer};
use neural::rng::Rng64;
use neural::{loss, Matrix, Tensor3};
use ovs_core::trainer::OvsTrainer;
use ovs_core::{EstimatorInput, OvsConfig};
use roadnet::{presets, OdSet, TodTensor};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One matmul measurement point.
#[derive(Serialize)]
struct MatmulPoint {
    kernel: String,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    gflops: f64,
}

/// One end-to-end train+simulate measurement.
#[derive(Serialize)]
struct EndToEnd {
    dataset: String,
    links: usize,
    od_pairs: usize,
    intervals: usize,
    train_samples: usize,
    /// Dataset assembly: training-corpus + observed simulator runs.
    simulate_s: f64,
    /// Full OVS pipeline (stages 1-3).
    train_s: f64,
    total_s: f64,
}

/// The numbers captured at the seed commit, for the before/after table.
#[derive(Serialize)]
struct Baseline {
    commit: String,
    matmul_gflops_serial_256: f64,
    matmul_gflops_par_256: f64,
    train_steps_per_sec: f64,
    sim_ticks_per_sec: f64,
    /// (dataset name, total seconds) pairs.
    end_to_end_total_s: Vec<(String, f64)>,
}

/// Speedup of this run over the recorded baseline.
#[derive(Serialize)]
struct Speedup {
    matmul_serial_256: f64,
    matmul_par_256: f64,
    train_steps: f64,
    sim_ticks: f64,
    /// (dataset name, baseline_total / current_total) pairs.
    end_to_end: Vec<(String, f64)>,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    profile: String,
    threads: usize,
    matmul: Vec<MatmulPoint>,
    naive_matmul_gflops_256: f64,
    train_steps_per_sec: f64,
    sim_ticks_per_sec: f64,
    end_to_end: Vec<EndToEnd>,
    baseline: Option<Baseline>,
    speedup: Option<Speedup>,
}

/// Baseline numbers recorded at the pre-optimisation seed (commit
/// d6e29c1) with `CITYOD_PROFILE=standard` on the CI machine class.
/// `None` until first captured.
fn seed_baseline() -> Option<Baseline> {
    Some(Baseline {
        commit: "d6e29c1".into(),
        matmul_gflops_serial_256: 6.458,
        matmul_gflops_par_256: 7.114,
        train_steps_per_sec: 11.768,
        sim_ticks_per_sec: 296_296.0,
        end_to_end_total_s: vec![
            ("synthetic/Gaussian-tiny".into(), 0.08),
            ("Manhattan".into(), 14.10),
        ],
    })
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn check_finite(what: &str, value: f64) {
    if !value.is_finite() {
        eprintln!("numeric bench: non-finite value in {what}: {value}");
        std::process::exit(1);
    }
}

fn fill_sin(rows: usize, cols: usize, phase: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        0.5 + 0.4 * ((r as f64 * 0.37 + c as f64 * 1.13 + phase).sin())
    })
}

/// Textbook i-k-j matmul, kept here (not in `neural`) as the
/// throughput yardstick the tiled kernels are compared against.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let av = a.get(i, p);
            for j in 0..n {
                out.set(i, j, out.get(i, j) + av * b.get(p, j));
            }
        }
    }
    out
}

fn bench_matmuls(points: &mut Vec<MatmulPoint>, threads: usize) {
    // (m, k, n): a square blocking-sensitive shape and a stage-1-like
    // tall-skinny shape (batch 720 = 180 links x 4 samples, LSTM gates).
    for &(m, k, n) in &[(256usize, 256usize, 256usize), (720, 32, 128)] {
        let a = fill_sin(m, k, 0.0);
        let b = fill_sin(k, n, 1.0);
        let at = fill_sin(k, m, 2.0); // for matmul_at_b: (k,m)^T @ (k,n)
        let bt = fill_sin(n, k, 3.0); // for matmul_a_bt: (m,k) @ (n,k)^T
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let reps = if m * k * n > 4_000_000 { 5 } else { 9 };

        let run = |name: &str, f: &dyn Fn() -> Matrix| -> MatmulPoint {
            let secs = time_best(reps, || {
                let out = f();
                black_box(out.as_slice()[0]);
            });
            let out = f();
            check_finite(name, out.sum());
            MatmulPoint {
                kernel: name.into(),
                m,
                k,
                n,
                threads,
                gflops: flops / secs / 1e9,
            }
        };

        points.push(run("matmul", &|| a.matmul(&b)));
        points.push(run("matmul_at_b", &|| at.matmul_at_b(&b)));
        points.push(run("matmul_a_bt", &|| a.matmul_a_bt(&bt)));
    }
}

/// Steps/sec of a v2s-shaped LSTM stack (Lstm(1,32) → Lstm(32,32) →
/// TimeDistributed(Dense(32,1)) → Sigmoid) on a Manhattan-sized batch.
fn bench_train_steps() -> f64 {
    let mut rng = Rng64::new(11);
    let hidden = 32;
    let mut net = SeqSequential::new(vec![
        Box::new(Lstm::new(1, hidden, &mut rng)),
        Box::new(Lstm::new(hidden, hidden, &mut rng)),
        Box::new(TimeDistributed::new(Dense::new(hidden, 1, &mut rng))),
        Box::new(SeqActivation::new(ActKind::Sigmoid)),
    ]);
    let batch = 720; // 180 links x 4 training samples
    let t = 6;
    let x = Tensor3::from_matrix_single_feature(&fill_sin(batch, t, 0.3));
    let y = Tensor3::from_matrix_single_feature(&fill_sin(batch, t, 0.9));
    let mut opt = Adam::new(1e-3);

    let mut step = |net: &mut SeqSequential| -> f64 {
        let pred = net.forward(&x, true);
        let (l, grad) = loss::mse_seq(&pred, &y);
        net.backward(&grad);
        opt.step_seq(net);
        net.zero_grad();
        l
    };
    for _ in 0..3 {
        check_finite("train warmup loss", step(&mut net));
    }
    let measured = 20;
    let t0 = Instant::now();
    for _ in 0..measured {
        check_finite("train loss", step(&mut net));
    }
    measured as f64 / t0.elapsed().as_secs_f64()
}

/// Simulator ticks/sec on the Manhattan grid with all-pairs demand.
fn bench_sim_ticks() -> f64 {
    let preset = presets::manhattan();
    let net = preset.network;
    let ods = OdSet::all_pairs(&net);
    let spec = DatasetSpec {
        t: 6,
        interval_s: 300.0,
        train_samples: 1,
        demand_scale: 0.15,
        seed: 7,
    };
    let cfg = spec.sim_config();
    let tod = TodTensor::filled(ods.len(), spec.t, 0.02);
    let ticks = cfg.total_ticks() as f64;
    let t0 = Instant::now();
    let out = datagen::dataset::simulate(&net, &ods, &cfg, &tod).expect("manhattan sim runs");
    let secs = t0.elapsed().as_secs_f64();
    if !out.speed.is_finite() {
        eprintln!("numeric bench: non-finite simulated speeds");
        std::process::exit(1);
    }
    ticks / secs
}

/// End-to-end: dataset assembly (simulate) + full OVS training.
fn bench_end_to_end(name: &str, build: impl FnOnce() -> Dataset, cfg: OvsConfig) -> EndToEnd {
    let t0 = Instant::now();
    let ds = build();
    let simulate_s = t0.elapsed().as_secs_f64();

    let input = EstimatorInput::builder(&ds.net, &ds.ods)
        .interval_s(ds.sim_config.interval_s)
        .sim_seed(ds.sim_config.seed)
        .train(&ds.train)
        .observed_speed(&ds.observed_speed)
        .build();
    let t1 = Instant::now();
    let (mut model, _report) = OvsTrainer::new(cfg).run(&input).expect("OVS trains");
    let train_s = t1.elapsed().as_secs_f64();
    let tod = model.recovered_tod();
    if !tod.is_finite() {
        eprintln!("numeric bench: non-finite recovered TOD for {name}");
        std::process::exit(1);
    }

    println!(
        "  e2e {name}: simulate {simulate_s:.2}s + train {train_s:.2}s = {:.2}s",
        simulate_s + train_s
    );
    EndToEnd {
        dataset: name.into(),
        links: ds.n_links(),
        od_pairs: ds.n_od(),
        intervals: ds.n_intervals(),
        train_samples: ds.train.len(),
        simulate_s,
        train_s,
        total_s: simulate_s + train_s,
    }
}

fn find_gflops(points: &[MatmulPoint], threads: usize) -> f64 {
    points
        .iter()
        .find(|p| p.kernel == "matmul" && p.m == 256 && p.threads == threads)
        .map(|p| p.gflops)
        .unwrap_or(f64::NAN)
}

fn main() {
    let profile = bench::start("numeric", "numeric-core raw-speed trajectory");
    let threads = rayon::current_num_threads();

    println!("# matmul throughput");
    let mut matmul = Vec::new();
    let serial = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("serial pool");
    serial.install(|| bench_matmuls(&mut matmul, 1));
    if threads > 1 {
        bench_matmuls(&mut matmul, threads);
    }
    for p in &matmul {
        println!(
            "  {:<12} {:>4}x{:<4}x{:<4} t={} {:>8.3} GFLOP/s",
            p.kernel, p.m, p.k, p.n, p.threads, p.gflops
        );
    }

    let a = fill_sin(256, 256, 0.0);
    let b = fill_sin(256, 256, 1.0);
    let naive_secs = time_best(3, || {
        let out = naive_matmul(&a, &b);
        black_box(out.as_slice()[0]);
    });
    let naive_gflops = 2.0 * 256f64.powi(3) / naive_secs / 1e9;
    println!("  naive ijk    256x256x256 t=1 {naive_gflops:>8.3} GFLOP/s");

    println!("# training steps/sec (v2s stack, batch 720, T=6, hidden 32)");
    let steps = bench_train_steps();
    check_finite("train steps/sec", steps);
    println!("  {steps:.3} steps/s");

    println!("# simulator ticks/sec (Manhattan, all-pairs demand)");
    let ticks = bench_sim_ticks();
    check_finite("sim ticks/sec", ticks);
    println!("  {ticks:.0} ticks/s");

    println!("# end-to-end train+simulate");
    let mut e2e = Vec::new();
    let tiny_spec = DatasetSpec {
        t: 4,
        interval_s: 120.0,
        train_samples: 3,
        demand_scale: 0.1,
        seed: 4,
    };
    e2e.push(bench_end_to_end(
        "synthetic/Gaussian-tiny",
        || Dataset::synthetic(TodPattern::Gaussian, &tiny_spec).expect("tiny dataset"),
        OvsConfig::tiny(),
    ));
    if profile.name == "quick" {
        println!("  (quick profile: Manhattan end-to-end skipped)");
    } else {
        let man_spec = DatasetSpec {
            t: 6,
            interval_s: 300.0,
            train_samples: 4,
            demand_scale: 0.15,
            seed: 7,
        };
        let man_cfg = OvsConfig {
            lstm_hidden: 32,
            fit_restarts: 1,
            ..OvsConfig::tiny()
        };
        e2e.push(bench_end_to_end(
            "Manhattan",
            || Dataset::city(presets::manhattan(), &man_spec).expect("manhattan dataset"),
            man_cfg,
        ));
    }

    let baseline = seed_baseline();
    let speedup = baseline.as_ref().map(|b| Speedup {
        matmul_serial_256: find_gflops(&matmul, 1) / b.matmul_gflops_serial_256,
        matmul_par_256: find_gflops(&matmul, threads) / b.matmul_gflops_par_256,
        train_steps: steps / b.train_steps_per_sec,
        sim_ticks: ticks / b.sim_ticks_per_sec,
        end_to_end: e2e
            .iter()
            .filter_map(|cur| {
                b.end_to_end_total_s
                    .iter()
                    .find(|(name, _)| name == &cur.dataset)
                    .map(|(name, base)| (name.clone(), base / cur.total_s))
            })
            .collect(),
    });
    if let Some(s) = &speedup {
        println!("# speedup vs seed baseline");
        println!(
            "  matmul serial x{:.2}  parallel x{:.2}  train x{:.2}  sim x{:.2}",
            s.matmul_serial_256, s.matmul_par_256, s.train_steps, s.sim_ticks
        );
        for (name, x) in &s.end_to_end {
            println!("  e2e {name}: x{x:.2}");
        }
    }

    let report = Report {
        bench: "numeric".into(),
        profile: profile.name.into(),
        threads,
        matmul,
        naive_matmul_gflops_256: naive_gflops,
        train_steps_per_sec: steps,
        sim_ticks_per_sec: ticks,
        end_to_end: e2e,
        baseline,
        speedup,
    };
    let dir = bench::results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("BENCH_numeric.json");
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write(&path, json).expect("report written");
    println!("# report -> {}", path.display());
}
