//! Figure 10 (RQ2): census data as an auxiliary constraint.
//!
//! Two ODs whose origins are similar-population residential regions should
//! have similar recovered daily totals. Without the census loss OVS may
//! pick any of the many speed-consistent solutions; with it the totals are
//! pulled to the census values. We print the recovered daily-sum per OD
//! (normalised so the census value is 100, as in the paper's figure).
//!
//! Run: `cargo run --release -p bench --bin fig10_census`

use datagen::Dataset;
use eval::harness::{run_method, DatasetInput};
use eval::report::{ExperimentReport, NamedSeries};
use ovs_core::trainer::OvsEstimator;
use roadnet::presets;

fn main() {
    let profile = bench::start("fig10", "census constraint (RQ2)");
    let ds = Dataset::city(presets::manhattan(), &profile.spec).expect("dataset builds");
    let owned = DatasetInput::new(&ds);

    // Two ODs with similar census totals (the paper picks two residential
    // regions with similar population).
    let census = ds.census.as_slice();
    // Only consider ODs with substantial demand: the comparison is about
    // *similar-population residential regions*, not empty pairs.
    let mut sorted: Vec<f64> = census.iter().copied().filter(|&c| c > 0.0).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = sorted
        .get(sorted.len() * 3 / 4)
        .copied()
        .unwrap_or(1.0)
        .max(1.0);
    let (mut best_i, mut best_j, mut best_gap) = (0usize, 1usize, f64::INFINITY);
    for i in 0..census.len() {
        for j in (i + 1)..census.len() {
            if census[i] < threshold || census[j] < threshold {
                continue;
            }
            let gap = (census[i] - census[j]).abs() / census[i].max(1e-9);
            if gap < best_gap {
                best_gap = gap;
                best_i = i;
                best_j = j;
            }
        }
    }
    println!(
        "# picked OD {best_i} (census {:.1}) and OD {best_j} (census {:.1})",
        census[best_i], census[best_j]
    );

    let mut report = ExperimentReport::new("fig10", "Figure 10: census constraint");
    println!(
        "{:<22} {:>12} {:>12} {:>18}",
        "Setting", "OD A total", "OD B total", "(normalised: 100)"
    );
    for (label, w_census) in [("without census", 0.0), ("with census", 0.5)] {
        let cfg = profile.ovs.clone().with_aux_weights(w_census, 0.0);
        let mut est = OvsEstimator::new(cfg);
        let input = owned.input(&ds, w_census > 0.0);
        let (_, tod) = run_method(&mut est, &ds, &input).expect("OVS runs");
        let norm_a = 100.0 * tod.row_total(roadnet::OdPairId(best_i)) / census[best_i];
        let norm_b = 100.0 * tod.row_total(roadnet::OdPairId(best_j)) / census[best_j];
        println!("{label:<22} {norm_a:>12.1} {norm_b:>12.1}");
        report.series.push(NamedSeries {
            name: label.into(),
            points: vec![(0.0, norm_a), (1.0, norm_b)],
        });
    }
    println!("# closer to 100 on both = constraint satisfied");

    report.notes = format!(
        "profile={}, ODs {best_i}/{best_j}, census gap {:.1}%",
        profile.name,
        best_gap * 100.0
    );
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
