//! Seed-robustness check: the Table VIII comparison repeated over several
//! independent dataset draws, reported as mean +- std per method. The
//! paper reports single numbers; this binary shows how stable our
//! reproduction's ordering is.
//!
//! Run: `cargo run --release -p bench --bin robustness_seeds`

use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use eval::compare_multi_seed;
use eval::report::{ExperimentReport, NamedSeries};

fn main() {
    let profile = bench::start("robustness_seeds", "multi-seed stability of the comparison");
    let seeds = [7u64, 17, 27];
    let base = profile.spec.clone();
    let agg = compare_multi_seed(
        |seed| {
            let spec = DatasetSpec {
                seed,
                ..base.clone()
            };
            Dataset::synthetic(TodPattern::Gaussian, &spec)
        },
        &seeds,
        &profile.ovs,
        false,
    )
    .expect("multi-seed comparison runs");

    println!(
        "{:<10} {:>16} {:>16} {:>16}   ({} seeds)",
        "Method",
        "TOD",
        "vol",
        "speed",
        seeds.len()
    );
    let mut report = ExperimentReport::new("robustness_seeds", "Multi-seed stability");
    for a in &agg {
        println!(
            "{:<10} {:>8.2}+-{:<6.2} {:>8.2}+-{:<6.2} {:>8.3}+-{:<6.3}",
            a.name, a.mean.tod, a.std.tod, a.mean.volume, a.std.volume, a.mean.speed, a.std.speed
        );
        report.series.push(NamedSeries {
            name: a.name.clone(),
            points: vec![
                (0.0, a.mean.tod),
                (1.0, a.std.tod),
                (2.0, a.mean.volume),
                (3.0, a.std.volume),
                (4.0, a.mean.speed),
                (5.0, a.std.speed),
            ],
        });
    }
    report.notes = format!("profile={}, seeds={seeds:?}", profile.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
