//! Figure 11 (RQ3): robustness to road-work factors.
//!
//! The same TOD is simulated in a regular simulator and one with degraded
//! links (road work). A good method should recover (approximately) the
//! same TOD from both speed observations; a method that merely inverts
//! speeds regresses differently once the volume-speed mapping changes.
//! We report, per method, the RMSE between the TODs recovered from the
//! two scenarios (lower = more robust), exactly the quantity Fig 11
//! visualises.
//!
//! Run: `cargo run --release -p bench --bin fig11_roadwork`

use baselines::LstmEstimator;
use datagen::dataset::simulate;
use datagen::{Dataset, TodPattern};
use eval::harness::DatasetInput;
use eval::report::{ExperimentReport, NamedSeries};
use ovs_core::trainer::OvsEstimator;
use ovs_core::TodEstimator;
use simulator::{Scenario, Simulation};

fn main() {
    let profile = bench::start("fig11", "road-work robustness (RQ3)");
    let ds = Dataset::synthetic(TodPattern::Gaussian, &profile.spec).expect("dataset builds");
    let owned = DatasetInput::new(&ds);

    // Scenario 2: road work on a quarter of the links, same ground truth.
    let scenario = Scenario::sample_road_work(&ds.net, ds.net.num_links() / 8);
    let disrupted = Simulation::with_scenario(&ds.net, &ds.ods, ds.sim_config.clone(), scenario)
        .expect("simulation builds")
        .run(&ds.groundtruth_tod)
        .expect("simulation runs");
    // Sanity: the disruption must actually change the observation.
    let obs_shift = ds
        .observed_speed
        .rmse(&disrupted.speed)
        .expect("same shape");
    println!("# observation shift due to road work: RMSE_speed {obs_shift:.3}");

    let mut report = ExperimentReport::new("fig11", "Figure 11: road work robustness");
    println!(
        "{:<10} {:>24} {:>16} {:>16}",
        "Method", "TOD shift (reg vs work)", "err regular", "err road-work"
    );
    let methods: Vec<Box<dyn TodEstimator>> = vec![
        Box::new(OvsEstimator::new(profile.ovs.clone())),
        Box::new(LstmEstimator::new(profile.seed)),
    ];
    for mut m in methods {
        let input_reg = owned.input(&ds, false);
        let tod_reg = m.estimate(&input_reg).expect("regular estimate");
        let mut input_work = owned.input(&ds, false);
        input_work.observed_speed = &disrupted.speed;
        let tod_work = m.estimate(&input_work).expect("road-work estimate");
        let shift = tod_reg.rmse(&tod_work).expect("same shape");
        // Errors against ground truth in both scenarios.
        let err_reg = ds.groundtruth_tod.rmse(&tod_reg).expect("same shape");
        let err_work = ds.groundtruth_tod.rmse(&tod_work).expect("same shape");
        println!(
            "{:<10} {:>24.3} {:>16.2} {:>16.2}",
            m.name(),
            shift,
            err_reg,
            err_work
        );
        report.series.push(NamedSeries {
            name: m.name().to_string(),
            points: vec![(0.0, shift), (1.0, err_reg), (2.0, err_work)],
        });
        let _ = simulate; // evaluation helper available for extensions
    }
    println!("# lower shift = robust to the road-work factor (paper: OVS ~stable, LSTM drifts)");

    report.notes = format!("profile={}, obs shift {obs_shift:.3}", profile.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
