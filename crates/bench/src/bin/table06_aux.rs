//! Table VI companion: OVS with the paper's census auxiliary loss (Eq. 13)
//! on the city datasets, against the census-informed Gravity baseline.
//!
//! Rationale: in this reproduction the city ground truth is synthesised
//! around a census-driven gravity backbone, which hands the Gravity
//! baseline an unusually strong prior. The paper's own §IV-E remedy — feed
//! OVS the same census data as an auxiliary loss — levels that field; this
//! binary measures both methods with equal information.
//!
//! Run: `cargo run --release -p bench --bin table06_aux`
//!
//! Optional flags: `--save-model <path>` / `--load-model <path>` cache the
//! trained OVS model per city (path gets a `-<city>` suffix) so re-runs
//! with different render settings pay only the test-time fit.

use baselines::GravityEstimator;
use datagen::Dataset;
use eval::harness::{run_method, DatasetInput};
use eval::report::ExperimentReport;
use ovs_core::trainer::OvsEstimator;
use roadnet::presets;

fn main() {
    let profile = bench::start("table06_aux", "city comparison with census auxiliary data");
    let cache = bench::ModelCache::from_args();
    let mut report = ExperimentReport::new("table06_aux", "Table VI + census aux");
    println!(
        "{:<15} {:>14} {:>14} {:>14} {:>14}",
        "Dataset", "Gravity TOD", "OVS+census TOD", "Gravity speed", "OVS+census spd"
    );
    for preset in [presets::hangzhou(), presets::porto(), presets::manhattan()] {
        let ds = Dataset::city(preset, &profile.spec).expect("city dataset builds");
        let owned = DatasetInput::new(&ds);
        let input = owned.input(&ds, true); // census + cameras visible to all
        let mut grav = GravityEstimator::doubly_constrained();
        let (rg, _) = run_method(&mut grav, &ds, &input).expect("gravity runs");
        let cfg = profile.ovs.clone().with_aux_weights(0.3, 0.0);
        let (ro, _) = if cache.is_active() {
            let mut ovs = cache.for_dataset(&ds.name).ovs(cfg);
            run_method(&mut ovs, &ds, &input).expect("OVS runs")
        } else {
            let mut ovs = OvsEstimator::new(cfg);
            run_method(&mut ovs, &ds, &input).expect("OVS runs")
        };
        println!(
            "{:<15} {:>14.2} {:>14.2} {:>14.3} {:>14.3}",
            ds.name, rg.rmse.tod, ro.rmse.tod, rg.rmse.speed, ro.rmse.speed
        );
        report.comparisons.push((ds.name.clone(), vec![rg, ro]));
    }
    report.notes = format!("profile={}", profile.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
