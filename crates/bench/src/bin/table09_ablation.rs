//! Table IX: ablation study on the synthetic Random pattern — the full
//! OVS against variants with one module replaced.
//!
//! Run: `cargo run --release -p bench --bin table09_ablation`

use datagen::{Dataset, TodPattern};
use eval::harness::{run_method, DatasetInput, MethodResult};
use eval::report::ExperimentReport;
use eval::tables;
use ovs_core::trainer::OvsEstimator;
use ovs_core::OvsVariant;

fn main() {
    let profile = bench::start("table09", "ablation study (synthetic Random)");
    let ds = Dataset::synthetic(TodPattern::Random, &profile.spec).expect("dataset builds");
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);

    let mut results: Vec<MethodResult> = Vec::new();
    for variant in [
        OvsVariant::Full,
        OvsVariant::NoTodGen,
        OvsVariant::NoTod2V,
        OvsVariant::NoV2S,
    ] {
        let mut est = OvsEstimator::new(profile.ovs.clone().with_variant(variant));
        let (res, _) = run_method(&mut est, &ds, &input).expect("variant runs");
        results.push(res);
    }

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "Method", "TOD", "vol", "speed", "time(s)"
    );
    for r in &results {
        println!(
            "{:<14} {:>10.2} {:>10.2} {:>10.3} {:>10.2}",
            r.name, r.rmse.tod, r.rmse.volume, r.rmse.speed, r.seconds
        );
    }
    let _ = tables::render_comparison; // table rendered manually (no Improve row)

    let mut report = ExperimentReport::new("table09", "Table IX: ablation");
    report.comparisons.push((ds.name.clone(), results));
    report.notes = format!("profile={}", profile.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
