//! Figure 9: OVS training time against the number of intersections
//! (10 / 50 / 100 / 500 / 1000).
//!
//! Run: `cargo run --release -p bench --bin fig09_scalability`

use datagen::dataset::DatasetSpec;
use datagen::Dataset;
use eval::harness::{run_method, DatasetInput};
use eval::report::{ExperimentReport, NamedSeries};
use eval::tables;
use ovs_core::trainer::OvsEstimator;
use roadnet::generators::GridSpec;
use roadnet::OdSet;

fn main() {
    let profile = bench::start("fig09", "training time vs intersections");
    // A reduced horizon keeps the 1000-intersection point tractable; the
    // figure is about *scaling*, not absolute time.
    let spec = DatasetSpec {
        t: 4,
        interval_s: 300.0,
        train_samples: 4,
        demand_scale: profile.spec.demand_scale,
        seed: profile.seed,
    };
    let mut ovs_cfg = profile.ovs.clone();
    ovs_cfg.epochs_v2s = 100;
    ovs_cfg.epochs_tod2v = 60;
    ovs_cfg.epochs_fit = 200;
    ovs_cfg.fit_restarts = 1;

    let sizes: &[(usize, usize)] = &[(2, 5), (5, 10), (10, 10), (20, 25), (25, 40)];
    let mut points = Vec::new();
    for &(rows, cols) in sizes {
        let n = rows * cols;
        let net = GridSpec::new(rows, cols)
            .with_regions(3, 3)
            .build(profile.seed);
        let ods = OdSet::all_pairs(&net);
        let mut rng = neural::rng::Rng64::new(profile.seed);
        let gt = datagen::TodPattern::Gaussian.generate(
            ods.len(),
            spec.t,
            spec.interval_s / 60.0,
            spec.demand_scale,
            &mut rng,
        );
        let ds = Dataset::assemble(format!("grid-{n}"), net, ods, gt, &spec)
            .expect("grid dataset builds");
        let owned = DatasetInput::new(&ds);
        let input = owned.input(&ds, false);
        let mut ovs = OvsEstimator::new(ovs_cfg.clone());
        let (res, _) = run_method(&mut ovs, &ds, &input).expect("OVS runs");
        points.push((n as f64, res.seconds));
        println!("intersections={n:<5} time={:.2}s", res.seconds);
    }
    println!();
    println!(
        "{}",
        tables::render_series("Figure 9", "intersections", "train seconds", &points)
    );

    let mut report = ExperimentReport::new("fig09", "Figure 9: scalability");
    report.series.push(NamedSeries {
        name: "ovs_training_time".into(),
        points,
    });
    report.notes = format!("profile={} (reduced horizon)", profile.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
