//! Figure 13 (RQ4, case study 2): the football game — recovered inflows
//! to the stadium for three origins, Saturday 06:00-12:00, kickoff noon.
//!
//! The check: all inflows peak around 09:00 (two hours before the game),
//! and the highway-adjacent origins O1/O3 dwarf the local O2.
//!
//! Run: `cargo run --release -p bench --bin fig13_football`

use datagen::casestudy::football_game;
use datagen::Dataset;
use eval::harness::{run_method, DatasetInput};
use eval::report::{ExperimentReport, NamedSeries};
use eval::tables;
use ovs_core::trainer::OvsEstimator;
use roadnet::{presets, OdSet};

fn main() {
    let profile = bench::start("fig13", "football-game case study");
    let mut spec = profile.spec.clone();
    spec.t = 12; // 06:00 - 12:00 at half-hour intervals

    let preset = presets::state_college();
    let ods = OdSet::all_pairs(&preset.network);
    let case = football_game(
        &preset.network,
        &ods,
        spec.t,
        60.0 * spec.demand_scale,
        spec.seed,
    );
    let inflows = case.inflows;
    let truths: Vec<Vec<f64>> = inflows.iter().map(|&i| case.tod.row(i).to_vec()).collect();
    let ds = Dataset::assemble("football game", preset.network, ods, case.tod, &spec)
        .expect("dataset builds");

    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);
    let mut ovs = OvsEstimator::new(profile.ovs.clone());
    let (res, tod) = run_method(&mut ovs, &ds, &input).expect("OVS runs");
    println!(
        "# OVS RMSE: tod {:.2}, speed {:.3}",
        res.rmse.tod, res.rmse.speed
    );

    let mut report = ExperimentReport::new("fig13", "Figure 13: football game TOD");
    let hour = |ti: usize| 6.0 + 6.0 * (ti as f64 + 0.5) / spec.t as f64;
    for (k, &od) in inflows.iter().enumerate() {
        let rec = tod.row(od);
        let pts: Vec<(f64, f64)> = rec
            .iter()
            .enumerate()
            .map(|(ti, &v)| (hour(ti), v))
            .collect();
        println!(
            "{}",
            tables::render_series(
                &format!("recovered O{} -> stadium", k + 1),
                "hour",
                "trips",
                &pts
            )
        );
        report.series.push(NamedSeries {
            name: format!("recovered O{}", k + 1),
            points: pts,
        });
        report.series.push(NamedSeries {
            name: format!("truth O{}", k + 1),
            points: truths[k]
                .iter()
                .enumerate()
                .map(|(ti, &v)| (hour(ti), v))
                .collect(),
        });
    }

    // Shape checks: totals O1, O3 >> O2; peak near 09:00.
    let totals: Vec<f64> = inflows.iter().map(|&i| tod.row_total(i)).collect();
    let peak_idx = tod
        .row(inflows[0])
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    println!(
        "# totals O1 {:.1}, O2 {:.1}, O3 {:.1}  (O1,O3 >> O2 expected)",
        totals[0], totals[1], totals[2]
    );
    println!("# O1 peak at ~{:.1}h (expected ~9)", hour(peak_idx));

    report.notes = format!(
        "profile={}, totals=({:.1},{:.1},{:.1}), o1_peak_hour={:.1}",
        profile.name,
        totals[0],
        totals[1],
        totals[2],
        hour(peak_idx)
    );
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
