//! Table VII: OVS running time (seconds) on the three city datasets.
//!
//! Run: `cargo run --release -p bench --bin table07_runtime`

use datagen::Dataset;
use eval::harness::{run_method, DatasetInput};
use eval::report::{ExperimentReport, NamedSeries};
use ovs_core::trainer::OvsEstimator;
use roadnet::presets;

fn main() {
    let profile = bench::start("table07", "OVS running time on real datasets");
    let mut points = Vec::new();
    println!("{:<15} {:>10}", "Dataset", "Time (s)");
    for preset in [presets::hangzhou(), presets::porto(), presets::manhattan()] {
        let name = preset.name;
        let ds = Dataset::city(preset, &profile.spec).expect("city dataset builds");
        let owned = DatasetInput::new(&ds);
        let input = owned.input(&ds, false);
        let mut ovs = OvsEstimator::new(profile.ovs.clone());
        let (res, _) = run_method(&mut ovs, &ds, &input).expect("OVS runs");
        println!("{:<15} {:>10.2}", name, res.seconds);
        points.push((ds.n_links() as f64, res.seconds));
    }

    let mut report = ExperimentReport::new("table07", "Table VII: running time");
    report.series.push(NamedSeries {
        name: "links_vs_seconds".into(),
        points,
    });
    report.notes = format!("profile={}", profile.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
