//! Table VI: RMSE of all seven methods on the three city datasets
//! (Hangzhou, Porto, Manhattan).
//!
//! Run: `cargo run --release -p bench --bin table06_real`
//!
//! Optional flags: `--save-model <path>` persists the trained OVS model
//! per dataset (path gets a `-<dataset>` suffix); `--load-model <path>`
//! warm-starts OVS from such artifacts instead of cold-training.

use datagen::Dataset;
use eval::report::ExperimentReport;
use eval::tables;
use roadnet::presets;

fn main() {
    let profile = bench::start("table06", "real-city comparison");
    let datasets: Vec<Dataset> = [presets::hangzhou(), presets::porto(), presets::manhattan()]
        .into_iter()
        .map(|p| Dataset::city(p, &profile.spec).expect("city dataset builds"))
        .collect();

    let blocks = bench::compare_datasets(&datasets, &profile.ovs, profile.seed, false)
        .expect("comparison runs");

    println!("{}", tables::render_multi(&blocks));

    let mut report = ExperimentReport::new("table06", "Table VI: real datasets");
    report.comparisons = blocks;
    report.notes = format!("profile={}", profile.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
