//! Hyperparameter sweep scratchpad: OVS vs the strongest baseline (LSTM)
//! across the five synthetic patterns. Development tool, not a paper
//! experiment. Knobs via env: TUNE_DEMAND, TUNE_PRIOR, TUNE_H, TUNE_V2S,
//! TUNE_FIT, TUNE_TRAIN, TUNE_T.

use baselines::LstmEstimator;
use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use eval::harness::{run_method, DatasetInput};
use ovs_core::trainer::OvsEstimator;
use ovs_core::OvsConfig;

fn envf(k: &str, d: f64) -> f64 {
    std::env::var(k)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(d)
}

fn main() {
    let demand = envf("TUNE_DEMAND", 0.15);
    let spec = DatasetSpec {
        t: envf("TUNE_T", 6.0) as usize,
        interval_s: 300.0,
        train_samples: envf("TUNE_TRAIN", 6.0) as usize,
        demand_scale: demand,
        seed: 7,
    };
    let ovs_cfg = OvsConfig {
        lstm_hidden: envf("TUNE_H", 16.0) as usize,
        epochs_v2s: envf("TUNE_V2S", 300.0) as usize,
        epochs_tod2v: 300,
        epochs_fit: envf("TUNE_FIT", 800.0) as usize,
        w_prior: envf("TUNE_PRIOR", 0.5),
        ..OvsConfig::default()
    };
    println!(
        "demand={demand} prior={} H={} v2s={} fit={}",
        ovs_cfg.w_prior, ovs_cfg.lstm_hidden, ovs_cfg.epochs_v2s, ovs_cfg.epochs_fit
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "dataset", "LSTM tod", "EM tod", "OVS tod", "LSTM spd", "EM spd", "OVS spd"
    );
    let mut datasets: Vec<Dataset> = Vec::new();
    match std::env::var("TUNE_CITY").as_deref() {
        Ok("state_college") => {
            datasets.push(Dataset::city(roadnet::presets::state_college(), &spec).unwrap())
        }
        Ok("hangzhou") => {
            datasets.push(Dataset::city(roadnet::presets::hangzhou(), &spec).unwrap())
        }
        Ok("manhattan") => {
            datasets.push(Dataset::city(roadnet::presets::manhattan(), &spec).unwrap())
        }
        _ => {
            for p in TodPattern::ALL {
                datasets.push(Dataset::synthetic(p, &spec).unwrap());
            }
        }
    }
    for ds in datasets {
        let owned = DatasetInput::new(&ds);
        let input = owned.input(&ds, false);
        let mut lstm = LstmEstimator::new(7);
        let (rl, _) = run_method(&mut lstm, &ds, &input).unwrap();
        let mut grav = baselines::GravityEstimator::new();
        let (rg, _) = run_method(&mut grav, &ds, &input).unwrap();
        print!(
            "grav tod {:.2} vol {:.2} spd {:.3} | ",
            rg.rmse.tod, rg.rmse.volume, rg.rmse.speed
        );
        let mut em = baselines::EmEstimator::new();
        let (re, _) = run_method(&mut em, &ds, &input).unwrap();
        let mut ovs = OvsEstimator::new(ovs_cfg.clone());
        let (ro, _) = run_method(&mut ovs, &ds, &input).unwrap();
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>10.3} {:>10.3} {:>10.3}",
            ds.name,
            rl.rmse.tod,
            re.rmse.tod,
            ro.rmse.tod,
            rl.rmse.speed,
            re.rmse.speed,
            ro.rmse.speed
        );
    }
}
