//! Tables IV and V: network structure and hyperparameters of OVS.
//!
//! Run: `cargo run -p bench --bin table04_config`

use ovs_core::OvsConfig;

fn print_cfg(label: &str, c: &OvsConfig) {
    println!("== {label} ==");
    println!(
        "TOD Generation    : FC({h}) sigmoid, FC(T) sigmoid, scale g_max={g}",
        h = c.tod_hidden,
        g = c.g_max
    );
    println!(
        "TOD-Volume        : OD-Route {} | Route-e Conv1x3({ch}) ReLU x2 | e-alpha FC(W={w})+Softmax(+sink)",
        if c.od_route_fc { "FC" } else { "identity (single-route, SS IV-C)" },
        ch = c.conv_channels,
        w = c.attention_window
    );
    println!(
        "Volume-Speed      : LSTM({h}) x2, FC(1), sigmoid, v_max={v}",
        h = c.lstm_hidden,
        v = c.v_max
    );
    println!("learning rate     : {}", c.lr);
    println!("dropout           : {}", c.dropout);
    println!(
        "epochs (s1/s2/fit): {}/{}/{}",
        c.epochs_v2s, c.epochs_tod2v, c.epochs_fit
    );
    println!("fit restarts      : {}", c.fit_restarts);
    println!("prior weight      : {}", c.w_prior);
    println!();
}

fn main() {
    println!("# table04: OVS network structure & hyperparameters (paper Tables IV-V)");
    print_cfg("paper profile (Table IV/V verbatim)", &OvsConfig::paper());
    print_cfg(
        "default profile (used by the experiment binaries)",
        &OvsConfig::default(),
    );
}
