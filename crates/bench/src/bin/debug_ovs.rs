//! Diagnostic harness for the OVS training pipeline (not a paper
//! experiment; kept for development and regression hunting).

use datagen::{Dataset, TodPattern};
use eval::harness::DatasetInput;
use eval::metrics::evaluate_tod;
use ovs_core::estimator::matrix_to_tod;
use ovs_core::trainer::OvsTrainer;

fn main() {
    let profile = bench::Profile::from_env();
    let ds = Dataset::synthetic(TodPattern::Gaussian, &profile.spec).unwrap();
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);

    let gt_mean = ds.groundtruth_tod.total() / ds.groundtruth_tod.as_slice().len() as f64;
    let gt_max = ds
        .groundtruth_tod
        .as_slice()
        .iter()
        .fold(0.0f64, |a, &b| a.max(b));
    println!("groundtruth TOD: mean {gt_mean:.2}, max {gt_max:.2}");
    let obs_mean = ds.observed_speed.total() / ds.observed_speed.as_slice().len() as f64;
    println!("observed speed: mean {obs_mean:.2}");

    let cfg = profile.ovs.clone();
    println!(
        "cfg: g_max={}, epochs {}/{}/{}",
        cfg.g_max, cfg.epochs_v2s, cfg.epochs_tod2v, cfg.epochs_fit
    );
    let trainer = OvsTrainer::new(cfg);
    let (mut model, report) = trainer.run(&input).unwrap();
    let trace = |name: &str, l: &[f64]| {
        println!(
            "{name} loss: {:.4} -> {:.4} (min {:.4})",
            l[0],
            l.last().unwrap(),
            l.iter().cloned().fold(f64::INFINITY, f64::min)
        );
    };
    trace("stage1 v2s", &report.v2s_losses);
    trace("stage2 tod2v", &report.tod2v_losses);
    trace("stage3 fit", &report.fit_losses);

    // Stage-2 decomposition on the first training sample.
    {
        use ovs_core::estimator::{link_to_matrix, tod_to_matrix};
        let sample = &input.train[0];
        let g = tod_to_matrix(&sample.tod);
        let q_target = link_to_matrix(&sample.volume);
        let v_target = link_to_matrix(&sample.speed);
        let q_pred = model.tod2v.forward(&g, false);
        let v_pred_model = model.v2s.forward(&q_pred, false);
        let v_pred_truevol = model.v2s.forward(&q_target, false);
        let rmse = |a: &neural::Matrix, b: &neural::Matrix| {
            let mut s = 0.0;
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                s += (x - y) * (x - y);
            }
            (s / a.len() as f64).sqrt()
        };
        println!("sample0 volume scale: mean {:.1}", q_target.mean());
        // Structural optimum: assign each route's counts to its links at
        // exactly the free-flow delay (no attention, no learning).
        {
            let routes = model.tod2v.routes();
            let t = g.cols();
            let mut q_delta = neural::Matrix::zeros(q_target.rows(), t);
            for j in 0..q_target.rows() {
                for inc in routes.incident(roadnet::LinkId(j)) {
                    for ti in 0..t {
                        if ti >= inc.delay_intervals {
                            let v = q_delta.get(j, ti)
                                + g.get(inc.od.index(), ti - inc.delay_intervals);
                            q_delta.set(j, ti, v);
                        }
                    }
                }
            }
            println!(
                "sample0 q_delta vs q_target RMSE: {:.2}",
                rmse(&q_delta, &q_target)
            );
        }
        println!(
            "sample0 q_pred vs q_target RMSE: {:.2}",
            rmse(&q_pred, &q_target)
        );
        println!(
            "sample0 v(model q) vs v_target RMSE: {:.2}",
            rmse(&v_pred_model, &v_target)
        );
        println!(
            "sample0 v(true q) vs v_target RMSE: {:.2}",
            rmse(&v_pred_truevol, &v_target)
        );
    }

    let rec = model.recovered_tod();
    println!(
        "recovered TOD: mean {:.2}, max {:.2}",
        rec.mean(),
        rec.as_slice().iter().fold(0.0f64, |a, &b| a.max(b))
    );
    let tod = matrix_to_tod(&rec);
    let r = evaluate_tod(&ds, &tod).unwrap();
    println!(
        "RMSE: tod {:.2}, vol {:.2}, speed {:.3}",
        r.tod, r.volume, r.speed
    );
}
