//! Design-choice ablations beyond the paper's Table IX: the knobs this
//! reproduction added (documented in DESIGN.md / EXPERIMENTS.md) measured
//! one at a time against the default configuration.
//!
//! * Gaussian-prior weight on the test-time fit (`w_prior`, §IV-B);
//! * fit-ensemble restarts (`fit_restarts`, the multiple-solutions issue);
//! * stage-2 volume anchoring (`w_volume_stage2`, Fig 8);
//! * multi-route TOD-Volume mapping (`k_routes`, the paper's future work).
//!
//! Run: `cargo run --release -p bench --bin ablation_design`

use datagen::{Dataset, TodPattern};
use eval::harness::{run_method, DatasetInput};
use eval::report::{ExperimentReport, NamedSeries};
use ovs_core::trainer::OvsEstimator;
use ovs_core::OvsConfig;

fn main() {
    let profile = bench::start("ablation_design", "reproduction design-choice ablations");
    let ds = Dataset::synthetic(TodPattern::Gaussian, &profile.spec).expect("dataset builds");
    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);

    let base = profile.ovs.clone();
    let variants: Vec<(String, OvsConfig)> = vec![
        ("default".into(), base.clone()),
        (
            "prior off (w_prior=0)".into(),
            OvsConfig {
                w_prior: 0.0,
                ..base.clone()
            },
        ),
        (
            "prior strong (w_prior=1)".into(),
            OvsConfig {
                w_prior: 1.0,
                ..base.clone()
            },
        ),
        (
            "single fit (restarts=1)".into(),
            OvsConfig {
                fit_restarts: 1,
                ..base.clone()
            },
        ),
        (
            "no volume anchor (s2 speed-only)".into(),
            OvsConfig {
                w_volume_stage2: 0.0,
                ..base.clone()
            },
        ),
        (
            "multi-route (k=2)".into(),
            OvsConfig {
                k_routes: 2,
                ..base.clone()
            },
        ),
        (
            "Eq.3 OD-Route FC on".into(),
            OvsConfig {
                od_route_fc: true,
                ..base.clone()
            },
        ),
    ];

    let mut report = ExperimentReport::new("ablation_design", "Design-choice ablations");
    println!(
        "{:<34} {:>10} {:>10} {:>10} {:>9}",
        "Variant", "TOD", "vol", "speed", "time(s)"
    );
    for (name, cfg) in variants {
        let mut est = OvsEstimator::new(cfg);
        let (res, _) = run_method(&mut est, &ds, &input).expect("variant runs");
        println!(
            "{:<34} {:>10.2} {:>10.2} {:>10.3} {:>9.2}",
            name, res.rmse.tod, res.rmse.volume, res.rmse.speed, res.seconds
        );
        report.series.push(NamedSeries {
            name,
            points: vec![
                (0.0, res.rmse.tod),
                (1.0, res.rmse.volume),
                (2.0, res.rmse.speed),
            ],
        });
    }

    report.notes = format!("profile={}, dataset={}", profile.name, ds.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
