//! Table III: dataset statistics (intersections, roads, trajectories).
//!
//! Run: `cargo run -p bench --bin table03_datasets`

use roadnet::presets::all_cities;

fn main() {
    println!("# table03: dataset information (paper Table III)");
    println!(
        "{:<15} {:>13} {:>8} {:>14} {:>9} {:>8}",
        "Dataset", "Intersections", "# roads", "# trajectories", "# regions", "# links"
    );
    for city in all_cities() {
        println!(
            "{:<15} {:>13} {:>8} {:>14} {:>9} {:>8}",
            city.name,
            city.network.num_nodes(),
            city.network.num_roads(),
            city.trajectories
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            city.network.num_regions(),
            city.network.num_links(),
        );
    }
    let grid = roadnet::presets::synthetic_grid();
    println!(
        "{:<15} {:>13} {:>8} {:>14} {:>9} {:>8}",
        "synthetic 3x3",
        grid.num_nodes(),
        grid.num_roads(),
        "-",
        grid.num_regions(),
        grid.num_links(),
    );
}
