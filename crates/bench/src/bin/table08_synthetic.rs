//! Table VIII: RMSE of all seven methods on the five synthetic TOD
//! patterns (3x3 grid, §V-B / §V-H).
//!
//! Run: `cargo run --release -p bench --bin table08_synthetic`
//!
//! Optional flags: `--save-model <path>` persists the trained OVS model
//! per pattern (path gets a `-<pattern>` suffix); `--load-model <path>`
//! warm-starts OVS from such artifacts instead of cold-training.

use datagen::{Dataset, TodPattern};
use eval::report::ExperimentReport;
use eval::tables;

fn main() {
    let profile = bench::start("table08", "synthetic patterns comparison");
    let datasets: Vec<Dataset> = TodPattern::ALL
        .iter()
        .map(|&p| Dataset::synthetic(p, &profile.spec).expect("synthetic dataset builds"))
        .collect();

    let blocks = bench::compare_datasets(&datasets, &profile.ovs, profile.seed, false)
        .expect("comparison runs");

    println!("{}", tables::render_multi(&blocks));

    let mut report = ExperimentReport::new("table08", "Table VIII: synthetic patterns");
    report.comparisons = blocks;
    report.notes = format!("profile={}", profile.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
