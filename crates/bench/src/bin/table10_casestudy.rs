//! Table X: speed-fit RMSE of every method on the two case studies
//! (Hangzhou Sunday, State College football game).
//!
//! The paper cannot score TOD/volume here (no ground truth for real map
//! feeds); it reports how well each method's recovered TOD reproduces the
//! observed speed. We do the same — and, because our case-study demand is
//! synthetic, EXPERIMENTS.md additionally records the hidden TOD errors.
//!
//! Run: `cargo run --release -p bench --bin table10_casestudy`

use datagen::casestudy::{football_game, hangzhou_sunday};
use datagen::Dataset;
use eval::harness::{run_method, DatasetInput, MethodResult};
use eval::report::ExperimentReport;
use roadnet::{presets, OdSet};

fn case_dataset(profile: &bench::Profile, which: usize) -> Dataset {
    let mut spec = profile.spec.clone();
    // A compressed day: 24 intervals for case 1, 12 for case 2 (06:00-12:00).
    match which {
        1 => {
            spec.t = 24;
            let preset = presets::hangzhou();
            let ods = OdSet::all_pairs(&preset.network);
            let case = hangzhou_sunday(
                &preset.network,
                &ods,
                spec.t,
                40.0 * spec.demand_scale,
                spec.seed,
            );
            Dataset::assemble(
                "Case 1 (Hangzhou Sunday)",
                preset.network,
                ods,
                case.tod,
                &spec,
            )
            .expect("case dataset builds")
        }
        _ => {
            spec.t = 12;
            let preset = presets::state_college();
            let ods = OdSet::all_pairs(&preset.network);
            let case = football_game(
                &preset.network,
                &ods,
                spec.t,
                60.0 * spec.demand_scale,
                spec.seed,
            );
            Dataset::assemble(
                "Case 2 (football game)",
                preset.network,
                ods,
                case.tod,
                &spec,
            )
            .expect("case dataset builds")
        }
    }
}

fn main() {
    let profile = bench::start("table10", "case-study speed fit");
    let mut report = ExperimentReport::new("table10", "Table X: case-study RMSE_speed");

    println!(
        "{:<10} {:>14} {:>14}",
        "Method", "Case 1 speed", "Case 2 speed"
    );
    let cases: Vec<Vec<MethodResult>> = [1usize, 2]
        .iter()
        .map(|&which| {
            let ds = case_dataset(&profile, which);
            let owned = DatasetInput::new(&ds);
            let input = owned.input(&ds, false);
            let results: Vec<MethodResult> =
                eval::default_methods(profile.ovs.clone(), profile.seed)
                    .into_iter()
                    .map(|mut m| run_method(m.as_mut(), &ds, &input).expect("method runs").0)
                    .collect();
            report.comparisons.push((ds.name.clone(), results.clone()));
            results
        })
        .collect();
    for (regular, disrupted) in cases[0].iter().zip(&cases[1]) {
        println!(
            "{:<10} {:>14.3} {:>14.3}",
            regular.name, regular.rmse.speed, disrupted.rmse.speed
        );
    }

    report.notes = format!("profile={}", profile.name);
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
