//! Figure 12 (RQ4, case study 1): Hangzhou Sunday — recovered TOD curves
//! between a residential region A and a commercial region B.
//!
//! The check: the recovered A->B series shows the two shopping peaks
//! (~10:00 and ~18:00) and B->A the late-evening return, from speed alone.
//!
//! Run: `cargo run --release -p bench --bin fig12_hangzhou`

use datagen::casestudy::hangzhou_sunday;
use datagen::Dataset;
use eval::harness::{run_method, DatasetInput};
use eval::report::{ExperimentReport, NamedSeries};
use eval::tables;
use ovs_core::trainer::OvsEstimator;
use roadnet::{presets, OdSet};

fn main() {
    let profile = bench::start("fig12", "Hangzhou Sunday case study");
    let mut spec = profile.spec.clone();
    spec.t = 24; // one compressed day, hourly intervals

    let preset = presets::hangzhou();
    let ods = OdSet::all_pairs(&preset.network);
    let case = hangzhou_sunday(
        &preset.network,
        &ods,
        spec.t,
        40.0 * spec.demand_scale,
        spec.seed,
    );
    let truth_ab: Vec<f64> = case.tod.row(case.a_to_b).to_vec();
    let truth_ba: Vec<f64> = case.tod.row(case.b_to_a).to_vec();
    let ds = Dataset::assemble("Hangzhou Sunday", preset.network, ods, case.tod, &spec)
        .expect("dataset builds");

    let owned = DatasetInput::new(&ds);
    let input = owned.input(&ds, false);
    let mut ovs = OvsEstimator::new(profile.ovs.clone());
    let (res, tod) = run_method(&mut ovs, &ds, &input).expect("OVS runs");
    println!(
        "# OVS RMSE: tod {:.2}, speed {:.3}",
        res.rmse.tod, res.rmse.speed
    );

    let mut report = ExperimentReport::new("fig12", "Figure 12: Hangzhou Sunday TOD");
    for (name, od, truth) in [
        ("A->B (res->com)", case.a_to_b, &truth_ab),
        ("B->A (com->res)", case.b_to_a, &truth_ba),
    ] {
        let rec = tod.row(od);
        let pts: Vec<(f64, f64)> = rec
            .iter()
            .enumerate()
            .map(|(h, &v)| (h as f64, v))
            .collect();
        println!(
            "{}",
            tables::render_series(&format!("recovered {name}"), "hour", "trips", &pts)
        );
        report.series.push(NamedSeries {
            name: format!("recovered {name}"),
            points: pts,
        });
        report.series.push(NamedSeries {
            name: format!("truth {name}"),
            points: truth
                .iter()
                .enumerate()
                .map(|(h, &v)| (h as f64, v))
                .collect(),
        });
    }

    // Shape checks mirrored in EXPERIMENTS.md: morning + evening peaks.
    let rec_ab = tod.row(case.a_to_b);
    let rec_ba = tod.row(case.b_to_a);
    let ab_10_vs_6 = rec_ab[10] / rec_ab[6].max(1e-9);
    let ba_22_vs_10 = rec_ba[22] / rec_ba[10].max(1e-9);
    println!("# A->B 10:00 vs 06:00 ratio: {ab_10_vs_6:.2} (>1 expected)");
    println!("# B->A 22:00 vs 10:00 ratio: {ba_22_vs_10:.2} (>1 expected)");

    report.notes = format!(
        "profile={}, ab_10_vs_6={ab_10_vs_6:.2}, ba_22_vs_10={ba_22_vs_10:.2}",
        profile.name
    );
    let path = report
        .write_json(bench::results_dir())
        .expect("report written");
    println!("# report -> {}", path.display());
}
