//! # bench — experiment binaries and micro-benchmarks
//!
//! One binary per paper table/figure (see DESIGN.md §3 for the index) and
//! Criterion micro-benchmarks for the hot paths. This library holds the
//! shared experiment profile machinery.
//!
//! Profiles are selected with the `CITYOD_PROFILE` environment variable:
//!
//! * `quick` — minutes-scale smoke profile (small horizons, few epochs);
//! * `standard` (default) — the profile EXPERIMENTS.md numbers were
//!   recorded with; tens of minutes for the full suite;
//! * `full` — the paper's hyperparameters (LSTM(128), 10 000 epochs);
//!   hours. Provided for completeness.

#![warn(missing_docs)]

use checkpoint::Snapshot;
use datagen::dataset::DatasetSpec;
use ovs_core::estimator::matrix_to_tod;
use ovs_core::trainer::OvsTrainer;
use ovs_core::{EstimatorInput, OvsConfig, TodEstimator};
use roadnet::{Result, RoadnetError, TodTensor};
use std::path::PathBuf;

/// A named experiment profile.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Profile name.
    pub name: &'static str,
    /// Dataset generation parameters.
    pub spec: DatasetSpec,
    /// OVS hyperparameters.
    pub ovs: OvsConfig,
    /// Seed shared by stochastic estimators.
    pub seed: u64,
}

impl Profile {
    /// The minutes-scale profile.
    pub fn quick() -> Self {
        Self {
            name: "quick",
            spec: DatasetSpec {
                t: 6,
                interval_s: 300.0,
                train_samples: 6,
                demand_scale: 0.15,
                seed: 7,
            },
            ovs: OvsConfig {
                lstm_hidden: 16,
                ..OvsConfig::default()
            },
            seed: 7,
        }
    }

    /// The default profile used for the recorded EXPERIMENTS.md numbers.
    pub fn standard() -> Self {
        Self {
            name: "standard",
            spec: DatasetSpec {
                t: 12,
                interval_s: 600.0,
                train_samples: 10,
                demand_scale: 0.15,
                seed: 7,
            },
            ovs: OvsConfig {
                epochs_v2s: 900,
                epochs_tod2v: 400,
                epochs_fit: 2000,
                ..OvsConfig::default()
            },
            seed: 7,
        }
    }

    /// The paper's hyperparameters (slow).
    pub fn full() -> Self {
        Self {
            name: "full",
            spec: DatasetSpec {
                t: 12,
                interval_s: 600.0,
                train_samples: 20,
                demand_scale: 0.15,
                seed: 7,
            },
            ovs: OvsConfig::paper(),
            seed: 7,
        }
    }

    /// Reads `CITYOD_PROFILE` (quick | standard | full); defaults to
    /// standard, panics on unknown values so typos do not silently run
    /// the wrong experiment.
    pub fn from_env() -> Self {
        match std::env::var("CITYOD_PROFILE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("full") => Self::full(),
            Ok("standard") | Err(_) => Self::standard(),
            Ok(other) => panic!("unknown CITYOD_PROFILE '{other}' (quick|standard|full)"),
        }
    }
}

/// Pre-trained model caching for the experiment binaries: `--save-model
/// <path>` persists the trained OVS pipeline as a checkpoint artifact
/// after a run, `--load-model <path>` warm-starts from one instead of
/// retraining stages 1-2 — so a table binary re-run (different aux
/// settings, different render) pays only the test-time fit.
#[derive(Debug, Clone, Default)]
pub struct ModelCache {
    /// Write the trained model here after the run (`--save-model`).
    pub save: Option<PathBuf>,
    /// Warm-start from this artifact instead of cold-training
    /// (`--load-model`).
    pub load: Option<PathBuf>,
    /// Also drop a `<save>.metrics.json` sidecar — the full process
    /// metrics export — next to the saved artifact (`--metrics`).
    pub metrics: bool,
}

impl ModelCache {
    /// Parses `--save-model <path>`, `--load-model <path>` and the
    /// `--metrics` switch from the process arguments (all optional; other
    /// arguments ignored).
    pub fn from_args() -> Self {
        let mut cache = Self::default();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--save-model" => cache.save = it.next().map(PathBuf::from),
                "--load-model" => cache.load = it.next().map(PathBuf::from),
                "--metrics" => cache.metrics = true,
                _ => {}
            }
        }
        cache
    }

    /// True when either direction is configured.
    pub fn is_active(&self) -> bool {
        self.save.is_some() || self.load.is_some()
    }

    /// Derives a per-dataset cache: `models/t6.ckpt` becomes
    /// `models/t6-hangzhou.ckpt` — so one `--save-model` flag serves a
    /// binary that sweeps several datasets without collisions.
    pub fn for_dataset(&self, dataset_name: &str) -> Self {
        let slug: String = dataset_name
            .to_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let retag = |p: &PathBuf| {
            let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("model");
            let ext = p.extension().and_then(|s| s.to_str()).unwrap_or("ckpt");
            p.with_file_name(format!("{stem}-{slug}.{ext}"))
        };
        Self {
            save: self.save.as_ref().map(retag),
            load: self.load.as_ref().map(retag),
            metrics: self.metrics,
        }
    }

    /// Wraps an OVS config into the estimator honouring this cache.
    pub fn ovs(&self, cfg: OvsConfig) -> CachedOvsEstimator {
        CachedOvsEstimator {
            cfg,
            cache: self.clone(),
        }
    }
}

fn ckpt_err(e: checkpoint::CheckpointError) -> RoadnetError {
    RoadnetError::InvalidSpec(format!("model cache: {e}"))
}

/// [`ovs_core::trainer::OvsEstimator`] with [`ModelCache`] semantics:
/// loads a checkpoint artifact to skip stages 1-2 (warm start), and/or
/// saves the trained pipeline after estimating. Without cache paths it
/// behaves exactly like the plain estimator.
pub struct CachedOvsEstimator {
    cfg: OvsConfig,
    cache: ModelCache,
}

impl TodEstimator for CachedOvsEstimator {
    fn name(&self) -> &str {
        self.cfg.variant.name()
    }

    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor> {
        let trainer = OvsTrainer::new(self.cfg.clone());
        let (mut model, _report) = match &self.cache.load {
            Some(path) => {
                // Snapshot is the one validated read path: full checksum
                // verification plus the content fingerprint the serving
                // layer reports as its ETag.
                let snapshot = Snapshot::read_from(path).map_err(ckpt_err)?;
                let weights = ovs_core::artifact::model_weights(snapshot.artifact(), &self.cfg)
                    .map_err(ckpt_err)?;
                trainer.run_warm(input, &weights)?
            }
            None => trainer.run(input)?,
        };
        let tod = matrix_to_tod(&model.recovered_tod());
        if let Some(path) = &self.cache.save {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)
                    .map_err(|e| RoadnetError::InvalidSpec(format!("model cache: {e}")))?;
            }
            ovs_core::artifact::save_model(&mut model, Some(&tod))
                .and_then(|b| b.write_to(path))
                .map_err(ckpt_err)?;
            if self.cache.metrics {
                // Metrics sidecar rides along with the artifact: the full
                // export (timings included) of everything the run
                // recorded, for provenance alongside the checkpoint.
                let sidecar = PathBuf::from(format!("{}.metrics.json", path.display()));
                std::fs::write(&sidecar, obs::global().to_json(true))
                    .map_err(|e| RoadnetError::InvalidSpec(format!("metrics sidecar: {e}")))?;
            }
        }
        Ok(tod)
    }
}

/// Runs the default seven-method panel over several datasets, honouring
/// the process-level [`ModelCache`] flags: with `--save-model` /
/// `--load-model` present, the plain OVS estimator is swapped for a
/// [`CachedOvsEstimator`] with a per-dataset artifact path; without them
/// this is exactly [`eval::harness::compare_datasets_parallel`].
pub fn compare_datasets(
    datasets: &[datagen::Dataset],
    ovs_cfg: &OvsConfig,
    seed: u64,
    with_aux: bool,
) -> Result<Vec<(String, Vec<eval::harness::MethodResult>)>> {
    let cache = ModelCache::from_args();
    if !cache.is_active() {
        return eval::harness::compare_datasets_parallel(datasets, ovs_cfg, seed, with_aux);
    }
    datasets
        .iter()
        .map(|ds| {
            let mut methods = baselines::all_baselines(seed);
            methods.push(Box::new(cache.for_dataset(&ds.name).ovs(ovs_cfg.clone())));
            let results = eval::harness::compare_methods(ds, methods, with_aux)?;
            Ok((ds.name.clone(), results))
        })
        .collect()
}

/// Directory the experiment binaries drop their JSON reports into.
pub fn results_dir() -> PathBuf {
    std::env::var("CITYOD_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Standard preamble: pins the worker-thread count (`CITYOD_THREADS`,
/// defaulting to the machine's core count), prints the experiment header
/// and returns the profile.
pub fn start(id: &str, title: &str) -> Profile {
    let workers = roadnet::parallel::init_global(None);
    let profile = Profile::from_env();
    println!("# {id}: {title}");
    println!("# threads = {workers}");
    println!(
        "# profile = {} (t={}, interval={}s, train={}, demand={}, ovs epochs {}/{}/{})",
        profile.name,
        profile.spec.t,
        profile.spec.interval_s,
        profile.spec.train_samples,
        profile.spec.demand_scale,
        profile.ovs.epochs_v2s,
        profile.ovs.epochs_tod2v,
        profile.ovs.epochs_fit,
    );
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_cost() {
        let q = Profile::quick();
        let s = Profile::standard();
        let f = Profile::full();
        assert!(q.spec.t <= s.spec.t);
        assert!(s.ovs.epochs_v2s <= f.ovs.epochs_v2s);
        assert_eq!(f.ovs.lstm_hidden, 128);
    }

    #[test]
    fn model_cache_paths_get_dataset_suffix() {
        let cache = ModelCache {
            save: Some(PathBuf::from("models/t6.ckpt")),
            load: Some(PathBuf::from("base")),
            metrics: false,
        };
        let per = cache.for_dataset("synthetic/Gaussian");
        assert_eq!(
            per.save.unwrap(),
            PathBuf::from("models/t6-synthetic-gaussian.ckpt")
        );
        assert_eq!(
            per.load.unwrap(),
            PathBuf::from("base-synthetic-gaussian.ckpt")
        );
        assert!(!ModelCache::default().is_active());
    }

    #[test]
    fn cached_estimator_saves_then_warm_loads() {
        use datagen::{Dataset, TodPattern};
        let spec = DatasetSpec {
            t: 3,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.1,
            seed: 4,
        };
        let ds = Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap();
        let input = EstimatorInput::builder(&ds.net, &ds.ods)
            .interval_s(ds.sim_config.interval_s)
            .sim_seed(ds.sim_config.seed)
            .train(&ds.train)
            .observed_speed(&ds.observed_speed)
            .build();
        let dir = std::env::temp_dir().join("cityod-model-cache-test");
        let path = dir.join("m.ckpt");
        let _ = std::fs::remove_file(&path);
        let cfg = OvsConfig::tiny();

        let mut cold = ModelCache {
            save: Some(path.clone()),
            load: None,
            metrics: true,
        }
        .ovs(cfg.clone());
        let tod_cold = cold.estimate(&input).unwrap();
        assert!(path.exists(), "--save-model must write the artifact");
        let sidecar = PathBuf::from(format!("{}.metrics.json", path.display()));
        assert!(sidecar.exists(), "--metrics must write the sidecar");
        let json = std::fs::read_to_string(&sidecar).unwrap();
        assert!(json.contains("trainer_fit_steps_total"), "{json}");
        let _ = std::fs::remove_file(&sidecar);

        let mut warm = ModelCache {
            save: None,
            load: Some(path.clone()),
            metrics: false,
        }
        .ovs(cfg);
        let tod_warm = warm.estimate(&input).unwrap();
        assert_eq!(tod_warm.rows(), tod_cold.rows());
        assert_eq!(tod_warm.num_intervals(), tod_cold.num_intervals());
        assert!(tod_warm.is_finite());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn results_dir_defaults_to_results() {
        // Only check the default path shape (env may be set in CI).
        if std::env::var("CITYOD_RESULTS").is_err() {
            assert_eq!(results_dir(), PathBuf::from("results"));
        }
    }
}
