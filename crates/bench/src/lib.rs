//! # bench — experiment binaries and micro-benchmarks
//!
//! One binary per paper table/figure (see DESIGN.md §3 for the index) and
//! Criterion micro-benchmarks for the hot paths. This library holds the
//! shared experiment profile machinery.
//!
//! Profiles are selected with the `CITYOD_PROFILE` environment variable:
//!
//! * `quick` — minutes-scale smoke profile (small horizons, few epochs);
//! * `standard` (default) — the profile EXPERIMENTS.md numbers were
//!   recorded with; tens of minutes for the full suite;
//! * `full` — the paper's hyperparameters (LSTM(128), 10 000 epochs);
//!   hours. Provided for completeness.

#![warn(missing_docs)]

use datagen::dataset::DatasetSpec;
use ovs_core::OvsConfig;
use std::path::PathBuf;

/// A named experiment profile.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Profile name.
    pub name: &'static str,
    /// Dataset generation parameters.
    pub spec: DatasetSpec,
    /// OVS hyperparameters.
    pub ovs: OvsConfig,
    /// Seed shared by stochastic estimators.
    pub seed: u64,
}

impl Profile {
    /// The minutes-scale profile.
    pub fn quick() -> Self {
        Self {
            name: "quick",
            spec: DatasetSpec {
                t: 6,
                interval_s: 300.0,
                train_samples: 6,
                demand_scale: 0.15,
                seed: 7,
            },
            ovs: OvsConfig {
                lstm_hidden: 16,
                ..OvsConfig::default()
            },
            seed: 7,
        }
    }

    /// The default profile used for the recorded EXPERIMENTS.md numbers.
    pub fn standard() -> Self {
        Self {
            name: "standard",
            spec: DatasetSpec {
                t: 12,
                interval_s: 600.0,
                train_samples: 10,
                demand_scale: 0.15,
                seed: 7,
            },
            ovs: OvsConfig {
                epochs_v2s: 900,
                epochs_tod2v: 400,
                epochs_fit: 2000,
                ..OvsConfig::default()
            },
            seed: 7,
        }
    }

    /// The paper's hyperparameters (slow).
    pub fn full() -> Self {
        Self {
            name: "full",
            spec: DatasetSpec {
                t: 12,
                interval_s: 600.0,
                train_samples: 20,
                demand_scale: 0.15,
                seed: 7,
            },
            ovs: OvsConfig::paper(),
            seed: 7,
        }
    }

    /// Reads `CITYOD_PROFILE` (quick | standard | full); defaults to
    /// standard, panics on unknown values so typos do not silently run
    /// the wrong experiment.
    pub fn from_env() -> Self {
        match std::env::var("CITYOD_PROFILE").as_deref() {
            Ok("quick") => Self::quick(),
            Ok("full") => Self::full(),
            Ok("standard") | Err(_) => Self::standard(),
            Ok(other) => panic!("unknown CITYOD_PROFILE '{other}' (quick|standard|full)"),
        }
    }
}

/// Directory the experiment binaries drop their JSON reports into.
pub fn results_dir() -> PathBuf {
    std::env::var("CITYOD_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Standard preamble: pins the worker-thread count (`CITYOD_THREADS`,
/// defaulting to the machine's core count), prints the experiment header
/// and returns the profile.
pub fn start(id: &str, title: &str) -> Profile {
    let workers = roadnet::parallel::init_global(None);
    let profile = Profile::from_env();
    println!("# {id}: {title}");
    println!("# threads = {workers}");
    println!(
        "# profile = {} (t={}, interval={}s, train={}, demand={}, ovs epochs {}/{}/{})",
        profile.name,
        profile.spec.t,
        profile.spec.interval_s,
        profile.spec.train_samples,
        profile.spec.demand_scale,
        profile.ovs.epochs_v2s,
        profile.ovs.epochs_tod2v,
        profile.ovs.epochs_fit,
    );
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_cost() {
        let q = Profile::quick();
        let s = Profile::standard();
        let f = Profile::full();
        assert!(q.spec.t <= s.spec.t);
        assert!(s.ovs.epochs_v2s <= f.ovs.epochs_v2s);
        assert_eq!(f.ovs.lstm_hidden, 128);
    }

    #[test]
    fn results_dir_defaults_to_results() {
        // Only check the default path shape (env may be set in CI).
        if std::env::var("CITYOD_RESULTS").is_err() {
            assert_eq!(results_dir(), PathBuf::from("results"));
        }
    }
}
