//! Rolling-window slicing with watermark-based closing.
//!
//! Event time is the observation-interval index. Window `w` of a
//! [`WindowSpec`] `{ length, stride, watermark }` covers the half-open
//! interval range `[w·stride, w·stride + length)`; consecutive windows
//! overlap whenever `stride < length`. Windows close strictly in index
//! order: window `w` closes once the **frontier** (the maximum event
//! time seen so far) reaches `end(w) + watermark`, so an observation may
//! arrive up to `watermark` intervals after its window's range has
//! passed and still be absorbed. An observation whose *every* containing
//! window has already closed is a **late drop**: it is counted
//! (`stream_late_drops_total`) and discarded, never silently absorbed
//! into a published result.
//!
//! ## Window lifecycle
//!
//! ```text
//!   pending ──(frontier ≥ start)──► open ──(frontier ≥ end+watermark)──► closed
//!      │                             ▲ absorbs in-range observations        │
//!      └── never receives data ──────┘          late arrivals ──► counted & dropped
//! ```
//!
//! ## Permutation invariance
//!
//! The assembled tensor is a pure function of the *multiset* of
//! observations absorbed per cell: readings are put into a canonical
//! (total) order before averaging, so any arrival-order permutation that
//! keeps every observation inside the watermark yields a bit-identical
//! window — the property `proptest` pins down in this module's tests.

use crate::log::Observation;
use crate::{Result, StreamError};
use fault::{CorruptedObservation, ObservationStats};
use roadnet::LinkTensor;
use std::collections::BTreeMap;

/// Shape of the rolling windows, in observation intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WindowSpec {
    /// Window length: how many intervals one estimation sees.
    pub length: usize,
    /// Stride between consecutive window starts (`stride < length` makes
    /// windows overlap; `stride == length` tiles them).
    pub stride: usize,
    /// How many intervals past a window's end the frontier must advance
    /// before the window closes — the grace period for late arrivals.
    pub watermark: u64,
}

impl WindowSpec {
    /// Validates and builds a spec: `length` and `stride` must be
    /// positive, and `stride` may not exceed `length` (a gap between
    /// windows would drop in-range observations on the floor).
    pub fn new(length: usize, stride: usize, watermark: u64) -> Result<Self> {
        if length == 0 || stride == 0 {
            return Err(StreamError::Config(format!(
                "window length ({length}) and stride ({stride}) must be positive"
            )));
        }
        if stride > length {
            return Err(StreamError::Config(format!(
                "stride ({stride}) > length ({length}) leaves interval gaps no window covers"
            )));
        }
        Ok(Self {
            length,
            stride,
            watermark,
        })
    }

    /// First interval of window `w` (inclusive).
    pub fn start(&self, w: usize) -> u64 {
        (w as u64).saturating_mul(self.stride as u64)
    }

    /// One past the last interval of window `w` (exclusive).
    pub fn end(&self, w: usize) -> u64 {
        self.start(w).saturating_add(self.length as u64)
    }
}

/// One closed window, ready for estimation.
#[derive(Debug, Clone)]
pub struct ClosedWindow {
    /// Window index (0-based).
    pub index: usize,
    /// First interval covered (inclusive).
    pub start: u64,
    /// One past the last interval covered (exclusive).
    pub end: u64,
    /// `links × length` speed tensor. Cells with no reading are imputed
    /// with the link's mean observed speed (tensor-wide mean when a link
    /// had no reading at all); [`ClosedWindow::mask`] is the truth about
    /// which cells were actually observed.
    pub observed: LinkTensor,
    /// Row-major `links × length` observation mask: `true` = at least
    /// one reading landed in the cell.
    pub mask: Vec<bool>,
    /// Total readings absorbed (a cell may hold several).
    pub observations: usize,
}

impl ClosedWindow {
    /// True when not a single observation landed in the window.
    pub fn is_empty(&self) -> bool {
        self.observations == 0
    }

    /// Fraction of cells with at least one reading.
    pub fn observed_fraction(&self) -> f64 {
        if self.mask.is_empty() {
            return 0.0;
        }
        self.mask.iter().filter(|&&m| m).count() as f64 / self.mask.len() as f64
    }
}

/// Slices an arrival-ordered observation stream into closed windows.
///
/// Feed observations with [`WindowSlicer::push`]; each call returns the
/// windows (in index order) that the new frontier closed. Call
/// [`WindowSlicer::flush`] at end-of-stream to close every window the
/// frontier has started.
#[derive(Debug)]
pub struct WindowSlicer {
    spec: WindowSpec,
    n_links: usize,
    next_close: usize,
    frontier: Option<u64>,
    // Per open window: one reading multiset per (link, column) cell.
    cells: BTreeMap<usize, Vec<Vec<f64>>>,
    late_drops: u64,
    invalid_drops: u64,
}

impl WindowSlicer {
    /// A slicer over `n_links` sensors.
    pub fn new(spec: WindowSpec, n_links: usize) -> Self {
        Self {
            spec,
            n_links,
            next_close: 0,
            frontier: None,
            cells: BTreeMap::new(),
            late_drops: 0,
            invalid_drops: 0,
        }
    }

    /// The slicer's window spec.
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Maximum event time seen so far.
    pub fn frontier(&self) -> Option<u64> {
        self.frontier
    }

    /// Observations dropped because every containing window had closed.
    pub fn late_drops(&self) -> u64 {
        self.late_drops
    }

    /// Observations dropped for non-finite speed or unknown link.
    pub fn invalid_drops(&self) -> u64 {
        self.invalid_drops
    }

    /// Index of the next window that will close.
    pub fn next_window(&self) -> usize {
        self.next_close
    }

    /// Inclusive window-index range containing interval `g`.
    fn containing(&self, g: u64) -> (usize, usize) {
        let stride = self.spec.stride as u64;
        let len = self.spec.length as u64;
        let hi = (g / stride) as usize;
        let lo = if g < len {
            0
        } else {
            // ceil((g + 1 - len) / stride)
            ((g + 1 - len).div_ceil(stride)) as usize
        };
        (lo, hi)
    }

    /// Absorbs one observation and returns any windows it closed.
    pub fn push(&mut self, obs: Observation) -> Vec<ClosedWindow> {
        let (lo, hi) = self.containing(obs.interval);
        if hi < self.next_close {
            // Every window that could hold this observation has closed:
            // count the drop — silence here would corrupt published
            // windows' "observations" accounting.
            self.late_drops += 1;
            obs::global().counter("stream_late_drops_total").inc();
            return Vec::new();
        }
        if obs.link.0 >= self.n_links || !obs.speed.is_finite() {
            self.invalid_drops += 1;
            obs::global().counter("stream_invalid_obs_total").inc();
            return Vec::new();
        }
        let length = self.spec.length;
        let n_cells = self.n_links * length;
        for w in lo.max(self.next_close)..=hi {
            let col = (obs.interval - self.spec.start(w)) as usize;
            let cell = obs.link.0 * length + col;
            let grid = self
                .cells
                .entry(w)
                .or_insert_with(|| vec![Vec::new(); n_cells]);
            if let Some(readings) = grid.get_mut(cell) {
                readings.push(obs.speed);
            }
        }
        self.frontier = Some(self.frontier.map_or(obs.interval, |f| f.max(obs.interval)));
        self.close_ready()
    }

    /// Closes every window whose watermark the frontier has passed.
    fn close_ready(&mut self) -> Vec<ClosedWindow> {
        let mut out = Vec::new();
        while let Some(frontier) = self.frontier {
            let end = self.spec.end(self.next_close);
            if frontier < end.saturating_add(self.spec.watermark) {
                break;
            }
            out.push(self.close_one());
        }
        out
    }

    /// Closes every window the frontier has *started* (its first
    /// interval has been reached), regardless of watermark — the
    /// end-of-stream drain.
    pub fn flush(&mut self) -> Vec<ClosedWindow> {
        let mut out = Vec::new();
        while let Some(frontier) = self.frontier {
            if self.spec.start(self.next_close) > frontier
                && !self.cells.contains_key(&self.next_close)
            {
                break;
            }
            out.push(self.close_one());
        }
        out
    }

    fn close_one(&mut self) -> ClosedWindow {
        let w = self.next_close;
        self.next_close += 1;
        let length = self.spec.length;
        let n_cells = self.n_links * length;
        let grid = self
            .cells
            .remove(&w)
            .unwrap_or_else(|| vec![Vec::new(); n_cells]);
        let mut data = vec![0.0_f64; n_cells];
        let mut mask = vec![false; n_cells];
        let mut observations = 0usize;
        for ((mut readings, value), seen) in grid.into_iter().zip(&mut data).zip(&mut mask) {
            if readings.is_empty() {
                continue;
            }
            observations += readings.len();
            // Canonical order before averaging: the multiset decides the
            // cell value, not the arrival order (f64 addition is not
            // associative enough to skip this).
            readings.sort_by(f64::total_cmp);
            *value = readings.iter().sum::<f64>() / readings.len() as f64;
            *seen = true;
        }
        let reg = obs::global();
        reg.counter("stream_windows_closed_total").inc();
        if observations == 0 {
            reg.counter("stream_windows_empty_total").inc();
        }
        // lint: allow(panic) — data/mask were sized n_links*length above
        let speed = LinkTensor::from_data(self.n_links, length, data)
            .expect("window grid is exactly links x length");
        let corrupted = CorruptedObservation {
            speed,
            mask: mask.clone(),
            stats: ObservationStats::default(),
        };
        ClosedWindow {
            index: w,
            start: self.spec.start(w),
            end: self.spec.end(w),
            observed: corrupted.imputed(),
            mask,
            observations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use roadnet::LinkId;

    fn obs(link: usize, interval: u64, speed: f64) -> Observation {
        Observation {
            link: LinkId(link),
            interval,
            speed,
        }
    }

    fn spec(length: usize, stride: usize, watermark: u64) -> WindowSpec {
        WindowSpec::new(length, stride, watermark).unwrap()
    }

    #[test]
    fn spec_validation_rejects_gaps_and_zeros() {
        assert!(WindowSpec::new(0, 1, 0).is_err());
        assert!(WindowSpec::new(4, 0, 0).is_err());
        assert!(WindowSpec::new(4, 5, 0).is_err());
        let s = spec(4, 2, 1);
        assert_eq!(s.start(3), 6);
        assert_eq!(s.end(3), 10);
    }

    #[test]
    fn windows_close_in_order_when_frontier_passes_watermark() {
        // length 4, stride 2, watermark 1: window 0 = [0,4), closes at
        // frontier >= 5; window 1 = [2,6), closes at frontier >= 7.
        let mut s = WindowSlicer::new(spec(4, 2, 1), 2);
        for t in 0..5 {
            assert!(s.push(obs(0, t, 10.0)).is_empty(), "t={t}");
        }
        let closed = s.push(obs(1, 5, 12.0));
        assert_eq!(closed.len(), 1);
        let w0 = &closed[0];
        assert_eq!((w0.index, w0.start, w0.end), (0, 0, 4));
        assert_eq!(w0.observations, 4);
        // Link 0 observed every interval of the window, link 1 none.
        assert!(w0.mask[..4].iter().all(|&m| m));
        assert!(w0.mask[4..].iter().all(|&m| !m));
        // Imputation filled link 1's row from the observed mean.
        assert!((w0.observed.get(LinkId(1), 0) - 10.0).abs() < 1e-12);
        assert_eq!(s.next_window(), 1);
    }

    #[test]
    fn overlapping_windows_share_observations() {
        // length 4, stride 2: interval 3 belongs to windows 0 and 1.
        let mut s = WindowSlicer::new(spec(4, 2, 0), 1);
        s.push(obs(0, 3, 9.0));
        let mut closed = s.push(obs(0, 7, 5.0));
        closed.extend(s.flush());
        let w0 = closed.iter().find(|w| w.index == 0).unwrap();
        let w1 = closed.iter().find(|w| w.index == 1).unwrap();
        assert_eq!(w0.observed.get(LinkId(0), 3), 9.0);
        assert_eq!(w1.observed.get(LinkId(0), 1), 9.0);
    }

    #[test]
    fn late_observation_is_counted_and_dropped() {
        let mut s = WindowSlicer::new(spec(2, 2, 0), 1);
        // Frontier jumps to 6: windows [0,2) [2,4) [4,6) all close.
        let closed = s.push(obs(0, 6, 8.0));
        assert_eq!(closed.len(), 3);
        assert!(closed.iter().all(|w| w.is_empty()));
        // Interval 1 only fits window 0, which has closed.
        assert!(s.push(obs(0, 1, 8.0)).is_empty());
        assert_eq!(s.late_drops(), 1);
        // Interval 6 fits the still-open window 3: not late.
        assert!(s.push(obs(0, 7, 8.0)).is_empty());
        assert_eq!(s.late_drops(), 1);
    }

    #[test]
    fn within_watermark_straggler_is_absorbed() {
        // watermark 2: window 0 = [0,2) closes at frontier >= 4.
        let mut s = WindowSlicer::new(spec(2, 2, 2), 1);
        s.push(obs(0, 0, 10.0));
        s.push(obs(0, 3, 7.0)); // frontier 3 < 4: window 0 still open
        s.push(obs(0, 1, 6.0)); // straggler for window 0, absorbed
        let closed = s.push(obs(0, 4, 7.0));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].observations, 2);
        assert_eq!(closed[0].observed.get(LinkId(0), 1), 6.0);
        assert_eq!(s.late_drops(), 0);
    }

    #[test]
    fn empty_and_all_late_windows_close_empty() {
        let mut s = WindowSlicer::new(spec(2, 2, 0), 1);
        // Nothing for window 0; frontier jump closes it empty.
        let closed = s.push(obs(0, 2, 5.0));
        assert_eq!(closed.len(), 1);
        assert!(closed[0].is_empty());
        assert_eq!(closed[0].observed_fraction(), 0.0);
        // All of window 1's data arrives after it closed -> all-late
        // window: closes empty, drops counted.
        let closed = s.push(obs(0, 4, 5.0));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].index, 1);
        assert_eq!(closed[0].observations, 1); // the t=2 reading above
        for t in [2, 3] {
            assert!(s.push(obs(0, t, 9.0)).is_empty());
        }
        assert_eq!(s.late_drops(), 2);
    }

    #[test]
    fn invalid_observations_are_dropped_not_absorbed() {
        let mut s = WindowSlicer::new(spec(2, 2, 0), 1);
        s.push(obs(5, 0, 10.0)); // unknown link
        s.push(obs(0, 0, f64::NAN)); // non-finite
        assert_eq!(s.invalid_drops(), 2);
        let closed = s.push(obs(0, 2, 5.0));
        assert_eq!(closed.len(), 1);
        assert!(closed[0].is_empty());
    }

    #[test]
    fn duplicate_cell_readings_average() {
        let mut s = WindowSlicer::new(spec(2, 2, 0), 1);
        s.push(obs(0, 0, 4.0));
        s.push(obs(0, 0, 8.0));
        let closed = s.push(obs(0, 2, 1.0));
        assert_eq!(closed[0].observed.get(LinkId(0), 0), 6.0);
        assert_eq!(closed[0].observations, 2);
    }

    #[test]
    fn flush_closes_started_windows_only() {
        let mut s = WindowSlicer::new(spec(4, 2, 5), 2);
        s.push(obs(0, 0, 3.0));
        s.push(obs(1, 3, 4.0));
        let drained = s.flush();
        // Frontier 3: windows 0 [0,4) and 1 [2,6) have started.
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].index, 0);
        assert_eq!(drained[1].index, 1);
        assert!(s.flush().is_empty());
    }

    proptest! {
        /// Any arrival-order permutation that stays within the watermark
        /// yields bit-identical closed windows.
        #[test]
        fn slicing_is_arrival_order_invariant(
            seed in 0u64..500,
            n_links in 1usize..4,
            speeds in proptest::collection::vec(1.0f64..30.0, 24),
        ) {
            use neural::rng::Rng64;
            let spec = spec(4, 2, 4);
            // Event times spread over [0, 12); watermark 4 means window 0
            // ([0,4), closes at frontier >= 8) tolerates any permutation
            // of a batch whose frontier prefix stays below 8 — so permute
            // within blocks of 8 consecutive arrivals.
            let mut rng = Rng64::for_index(seed, 0);
            let base: Vec<_> = speeds
                .iter()
                .enumerate()
                .map(|(i, &sp)| Observation {
                    link: roadnet::LinkId(i % n_links),
                    interval: (rng.index(12)) as u64,
                    speed: sp,
                })
                .collect();

            let run = |order: &[Observation]| {
                let mut s = WindowSlicer::new(spec, n_links);
                let mut closed = Vec::new();
                for &o in order {
                    closed.extend(s.push(o));
                }
                closed.extend(s.flush());
                (closed, s.late_drops())
            };

            // Sorting by event time first makes every batch watermark-safe:
            // each permuted block then spans at most a few intervals.
            let mut sorted = base.clone();
            sorted.sort_by_key(|o| o.interval);
            let (reference, ref_late) = run(&sorted);

            // Permute within blocks of 4 consecutive arrivals (intervals
            // inside a block differ by < watermark by construction).
            let mut permuted = sorted.clone();
            let mut prng = Rng64::for_index(seed, 1);
            for block in permuted.chunks_mut(4) {
                for i in (1..block.len()).rev() {
                    block.swap(i, prng.index(i + 1));
                }
            }
            let (got, got_late) = run(&permuted);

            prop_assert_eq!(reference.len(), got.len());
            prop_assert_eq!(ref_late, got_late);
            for (a, b) in reference.iter().zip(&got) {
                prop_assert_eq!(a.index, b.index);
                prop_assert_eq!(a.observations, b.observations);
                prop_assert_eq!(&a.mask, &b.mask);
                // Bit-identical assembled tensors.
                let av: Vec<u64> = a.observed.as_slice().iter().map(|v| v.to_bits()).collect();
                let bv: Vec<u64> = b.observed.as_slice().iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(av, bv);
            }
        }
    }
}
