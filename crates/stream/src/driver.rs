//! The online estimator driver: closed windows in, artifact versions out.
//!
//! For every closed window the driver assembles an `EstimatorInput` and
//! re-runs the paper's stage 3 (the test-time TOD-generator fit). Stages
//! 1-2 are *never* re-trained online — the V2S and TOD2V mappings encode
//! road physics, which does not drift window to window; what drifts is
//! demand, and demand lives entirely in the generator the fit optimises.
//!
//! Three ideas make the loop production-shaped:
//!
//! * **Warm starts.** Window `w+1` imports window `w`'s full model and
//!   re-fits only the generator (`OvsTrainer::run_warm_guarded`), cutting
//!   convergence to a fraction of a cold start's steps. The first window
//!   — and any window after a failure — runs the full cold pipeline.
//! * **Guarded fits.** Every fit runs under the non-finite guard: a
//!   poisoned window rolls back and retries with a reduced learning rate,
//!   and if it still diverges the warm attempt falls back to a cold
//!   start; if *that* diverges too the window is marked failed and the
//!   stream carries on — a bad window never corrupts the family.
//! * **Versioned publishing.** Each successful window is saved as the
//!   next version of the `stream-<run-id>` family with window provenance
//!   (interval range, observation count, masked RMSE) in a dedicated
//!   artifact section, so the serving layer's `SnapshotWatcher` — and a
//!   restarted driver — can pick up exactly where the stream left off.
//!
//! **Restart equivalence.** Running N windows in one process is
//! bit-identical (final weights *and* per-version artifact fingerprints)
//! to killing the driver at any window boundary and starting a fresh one:
//! the replacement replays the deterministic source, skips estimation for
//! windows at or below the newest published version, imports that
//! version's weights (the codec round-trips them bit-exactly) and
//! continues warm — the property `tests/restart_equivalence.rs` proves at
//! 1 and 4 threads.

use crate::report::{StreamReport, WindowOutcome, WindowStatus};
use crate::source::ObservationSource;
use crate::window::{ClosedWindow, WindowSlicer, WindowSpec};
use crate::{Result, StreamError};
use checkpoint::{ArtifactStore, RetryPolicy, SystemClock};
use datagen::{dataset::simulate, Dataset};
use eval::metrics::masked_speed_rmse;
use neural::Matrix;
use ovs_core::artifact::{model_provenance, model_weights, save_model, INCIDENTS_SECTION};
use ovs_core::config::OvsConfig;
use ovs_core::estimator::{matrix_to_tod, EstimatorInput};
use ovs_core::model::OvsModel;
use ovs_core::trainer::{OvsTrainer, RecoveryPolicy, Stage, TrainError, TrainReport};
// lint: allow(determinism) — wall clock feeds the per-window timing
// histogram only; estimation and artifacts never see it.
use std::time::Instant;

/// Artifact section holding per-window provenance:
/// `[window, start, end, observations, masked_rmse, warm, fit_steps]`.
pub const STREAM_WINDOW_SECTION: &str = "stream_window";

/// Fraction of the first-to-final loss gap a fit step must close for
/// [`steps_to_tol`]: step `s` qualifies once
/// `loss[s] <= final + TOL_FRACTION * (first - final)`.
const TOL_FRACTION: f64 = 0.05;

/// Per-window fault-injection tap: `(window, stage, step, loss, grad)`,
/// mirroring `StageOptions::tamper` with the window index prepended.
pub type WindowTamper<'a> = Box<dyn FnMut(usize, Stage, usize, &mut f64, &mut f64) + 'a>;

/// Configuration of one streaming run.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Identifies the artifact family (`stream-<run_id>`) all windows
    /// publish into; a restarted driver with the same id resumes it.
    pub run_id: String,
    /// How many windows to process before returning.
    pub windows: usize,
    /// Window geometry; `spec.length` must equal the dataset's interval
    /// count (the model geometry estimation runs at).
    pub spec: WindowSpec,
    /// Model/trainer configuration shared by every window.
    pub ovs: OvsConfig,
    /// Versions to keep when garbage-collecting after each publish
    /// (0 = never collect).
    pub keep_versions: usize,
    /// Non-finite recovery policy every fit runs under.
    pub recovery: RecoveryPolicy,
    /// Network-incident timeline the stream runs under, in stream ticks
    /// (tick 0 = start of interval 0). The same schedule must be
    /// installed on the [`crate::SimSource`] via
    /// [`crate::SimSource::with_incidents`]; the driver records it as
    /// per-version provenance so the serving layer can report which
    /// incidents a published model was estimated under.
    pub incidents: simulator::IncidentSchedule,
}

impl StreamConfig {
    /// The artifact family this run publishes into.
    pub fn family(&self) -> String {
        format!("stream-{}", self.run_id)
    }
}

/// First fit step whose loss closed `1 - TOL_FRACTION` of the gap between
/// the first and final loss — a convergence-speed measure that, unlike
/// the raw step count, is independent of the early-stopping budget, so
/// warm and cold fits compare fairly.
pub fn steps_to_tol(losses: &[f64]) -> Option<usize> {
    let first = *losses.first()?;
    let last = *losses.last()?;
    if !first.is_finite() || !last.is_finite() {
        return None;
    }
    let threshold = last + TOL_FRACTION * (first - last);
    losses.iter().position(|&l| l <= threshold)
}

/// The rolling-window re-estimation loop. See the module docs.
pub struct StreamDriver<'a> {
    ds: &'a Dataset,
    cfg: StreamConfig,
    trainer: OvsTrainer,
    tamper: Option<WindowTamper<'a>>,
    prev_weights: Option<Vec<Matrix>>,
}

impl<'a> StreamDriver<'a> {
    /// A driver re-estimating `ds`'s demand window by window.
    pub fn new(ds: &'a Dataset, cfg: StreamConfig) -> Result<Self> {
        if cfg.windows == 0 {
            return Err(StreamError::Config("windows must be >= 1".into()));
        }
        if cfg.spec.length != ds.n_intervals() {
            return Err(StreamError::Config(format!(
                "window length ({}) must equal the dataset's interval count ({}): \
                 estimation runs at the dataset's model geometry",
                cfg.spec.length,
                ds.n_intervals()
            )));
        }
        ArtifactStore::validate_name(&cfg.family())?;
        cfg.incidents
            .validate(ds.n_links(), ds.net.num_nodes())
            .map_err(StreamError::Config)?;
        let trainer = OvsTrainer::new(cfg.ovs.clone());
        Ok(Self {
            ds,
            cfg,
            trainer,
            tamper: None,
            prev_weights: None,
        })
    }

    /// Installs a fault-injection tap forwarded into every window's fit
    /// (the deterministic poisoning hook the divergence tests drive).
    pub fn with_tamper(mut self, tamper: WindowTamper<'a>) -> Self {
        self.tamper = Some(tamper);
        self
    }

    /// The run configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Consumes `source` until [`StreamConfig::windows`] windows have
    /// closed (or the source is exhausted), estimating and publishing
    /// each one. If the family already holds published versions, windows
    /// at or below the newest published index are replayed without
    /// estimation and the newest version's weights seed the first warm
    /// start — the restart path.
    pub fn run(
        &mut self,
        store: &ArtifactStore,
        source: &mut dyn ObservationSource,
    ) -> Result<StreamReport> {
        let family = self.cfg.family();
        let mut resumed_from = None;
        let mut resume_after = None;
        if let Some(snapshot) = store.latest_good(&family, &RetryPolicy::default(), &SystemClock)? {
            let section = snapshot.artifact().f64s(STREAM_WINDOW_SECTION)?;
            let last = *section.first().ok_or_else(|| {
                StreamError::Config(format!(
                    "artifact '{}' has an empty {STREAM_WINDOW_SECTION} section",
                    snapshot.name()
                ))
            })? as usize;
            self.prev_weights = Some(model_weights(snapshot.artifact(), &self.cfg.ovs)?);
            resumed_from = Some(last);
            resume_after = Some(last);
            obs::global().counter("stream_resumes_total").inc();
        }

        let mut slicer = WindowSlicer::new(self.cfg.spec, self.ds.n_links());
        let mut outcomes: Vec<WindowOutcome> = Vec::with_capacity(self.cfg.windows);
        'ingest: loop {
            let batch = source.next_batch()?;
            // An empty batch is end-of-stream: drain the started windows
            // and stop (a SimSource never gets here; a LogSource does).
            let end_of_stream = batch.is_empty();
            let closed = if end_of_stream {
                slicer.flush()
            } else {
                let mut closed = Vec::new();
                for obs in batch {
                    closed.extend(slicer.push(obs));
                }
                closed
            };
            for window in closed {
                if window.index >= self.cfg.windows {
                    break 'ingest;
                }
                let outcome = self.process(store, &family, window, resume_after)?;
                outcomes.push(outcome);
                if outcomes.len() >= self.cfg.windows {
                    break 'ingest;
                }
            }
            if end_of_stream {
                break;
            }
        }

        Ok(StreamReport {
            run_id: self.cfg.run_id.clone(),
            family,
            windows: outcomes,
            late_drops: slicer.late_drops(),
            invalid_drops: slicer.invalid_drops(),
            resumed_from,
        })
    }

    /// Handles one closed window: skip (restart replay), empty, or
    /// estimate-and-publish.
    fn process(
        &mut self,
        store: &ArtifactStore,
        family: &str,
        window: ClosedWindow,
        resume_after: Option<usize>,
    ) -> Result<WindowOutcome> {
        let mut outcome = WindowOutcome {
            window: window.index,
            start: window.start,
            end: window.end,
            observations: window.observations,
            warm: false,
            fit_steps: 0,
            steps_to_tol: None,
            final_fit_loss: None,
            masked_rmse: None,
            artifact: None,
            fingerprint: None,
            status: WindowStatus::Empty,
            train_seconds: 0.0,
        };

        // Restart replay: this window's result is already published (it
        // is at or below the version the resume loaded), so the replay
        // only has to reconstruct ingestion state, not re-estimate.
        if resume_after.is_some_and(|last| window.index <= last) {
            outcome.status = WindowStatus::Skipped;
            return Ok(outcome);
        }

        // A window with no observations has nothing to fit against:
        // publish nothing, carry the previous model to the next window.
        if window.is_empty() {
            return Ok(outcome);
        }

        let input = EstimatorInput::builder(&self.ds.net, &self.ds.ods)
            .interval_s(self.ds.sim_config.interval_s)
            .sim_seed(self.ds.sim_config.seed)
            .train(&self.ds.train)
            .observed_speed(&window.observed)
            .build();

        let reg = obs::global();
        let recovery = self.cfg.recovery;
        // lint: allow(determinism) — wall clock feeds the timing histogram
        // only.
        let started = Instant::now();

        // Warm attempt from the previous window's model; on divergence,
        // fall back to a full cold pipeline before giving up on the
        // window.
        let wi = window.index;
        let mut warm = false;
        let trained: std::result::Result<(OvsModel, TrainReport), TrainError> = {
            let warm_attempt = match self.prev_weights.as_deref() {
                Some(weights) => {
                    warm = true;
                    let hook = &mut self.tamper;
                    let mut bound = hook.as_mut().map(|h| {
                        move |stage: Stage, step: usize, loss: &mut f64, grad: &mut f64| {
                            h(wi, stage, step, loss, grad)
                        }
                    });
                    Some(
                        self.trainer.run_warm_guarded(
                            &input,
                            weights,
                            recovery,
                            bound
                                .as_mut()
                                .map(|c| c as &mut dyn FnMut(Stage, usize, &mut f64, &mut f64)),
                        ),
                    )
                }
                None => None,
            };
            match warm_attempt {
                Some(Err(TrainError::Diverged { .. })) | None => {
                    if warm {
                        warm = false;
                        reg.counter("stream_divergences_total").inc();
                    }
                    let hook = &mut self.tamper;
                    let mut bound = hook.as_mut().map(|h| {
                        move |stage: Stage, step: usize, loss: &mut f64, grad: &mut f64| {
                            h(wi, stage, step, loss, grad)
                        }
                    });
                    self.trainer.run_resumable_guarded(
                        &input,
                        0,
                        &mut |_| Ok(()),
                        None,
                        recovery,
                        bound
                            .as_mut()
                            .map(|c| c as &mut dyn FnMut(Stage, usize, &mut f64, &mut f64)),
                    )
                }
                Some(other) => other,
            }
        };

        let (mut model, report) = match trained {
            Ok(ok) => ok,
            Err(TrainError::Diverged { .. }) => {
                // Even the cold fallback diverged: mark the window failed
                // and restart cold on the next one. Nothing is published,
                // so readers keep the last good window.
                reg.counter("stream_divergences_total").inc();
                reg.counter("stream_windows_failed_total").inc();
                self.prev_weights = None;
                outcome.status = WindowStatus::Failed;
                outcome.warm = warm;
                outcome.train_seconds = started.elapsed().as_secs_f64();
                return Ok(outcome);
            }
            Err(e) => return Err(StreamError::Roadnet(e.into())),
        };
        reg.counter(if warm {
            "stream_warm_starts_total"
        } else {
            "stream_cold_starts_total"
        })
        .inc();

        // Score the recovered demand against what was actually observed:
        // simulate it and compare speeds on observed cells only.
        let tod = matrix_to_tod(&model.recovered_tod());
        let sim = simulate(&self.ds.net, &self.ds.ods, &self.ds.sim_config, &tod)?;
        let rmse = masked_speed_rmse(&window.observed, &sim.speed, &window.mask)?;

        // Publish as the family's next version, window provenance inside
        // the artifact (it must survive independently of the sidecar and
        // feed the restart path).
        let mut builder = save_model(&mut model, Some(&tod))?;
        builder.add_f64s(
            STREAM_WINDOW_SECTION,
            &[
                window.index as f64,
                window.start as f64,
                window.end as f64,
                window.observations as f64,
                rmse,
                if warm { 1.0 } else { 0.0 },
                report.fit_losses.len() as f64,
            ],
        );
        // Record the incident timeline this window was estimated under,
        // with each incident's status relative to the window's tick range.
        if !self.cfg.incidents.is_empty() {
            let tpi = self.ds.sim_config.ticks_per_interval();
            let (ws, we) = (window.start * tpi, window.end * tpi);
            let mut rows = Vec::with_capacity(self.cfg.incidents.len() * 7);
            for inc in self.cfg.incidents.incidents() {
                let status = if inc.end_tick() <= ws {
                    0.0 // cleared before this window
                } else if inc.onset_tick >= we {
                    2.0 // scheduled after it
                } else {
                    1.0 // active during it
                };
                rows.extend_from_slice(&[
                    inc.kind.code() as f64,
                    inc.target.code() as f64,
                    inc.target.index() as f64,
                    inc.onset_tick as f64,
                    inc.duration_ticks as f64,
                    inc.severity,
                    status,
                ]);
            }
            builder.add_f64s(INCIDENTS_SECTION, &rows);
        }
        let mut provenance = model_provenance(&mut model, &report)?;
        provenance.note = format!(
            "stream window {} [{},{}) obs={} {} rmse={rmse:.4}",
            window.index,
            window.start,
            window.end,
            window.observations,
            if warm { "warm" } else { "cold" },
        );
        let name = store.save_versioned(family, &builder, &provenance)?;
        let snapshot = store.snapshot(&name)?;
        if self.cfg.keep_versions > 0 {
            store.gc(family, self.cfg.keep_versions)?;
        }

        let train_seconds = started.elapsed().as_secs_f64();
        reg.counter("stream_published_total").inc();
        reg.timing_histogram("stream_window_train_seconds", obs::DURATION_BUCKETS)
            .observe(train_seconds);
        reg.histogram("stream_window_masked_rmse", obs::LOSS_BUCKETS)
            .observe(rmse);

        self.prev_weights = Some(model.export_weights());
        outcome.warm = warm;
        outcome.fit_steps = report.fit_losses.len();
        outcome.steps_to_tol = steps_to_tol(&report.fit_losses);
        outcome.final_fit_loss = report.fit_losses.last().copied();
        outcome.masked_rmse = Some(rmse);
        outcome.fingerprint = Some(snapshot.fingerprint().to_string());
        outcome.artifact = Some(name);
        outcome.status = WindowStatus::Published;
        outcome.train_seconds = train_seconds;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_to_tol_measures_gap_closure() {
        // Gap 10 -> 0; threshold 0 + 0.05*10 = 0.5; first step <= 0.5 is
        // index 3.
        let losses = [10.0, 4.0, 1.0, 0.4, 0.1, 0.0];
        assert_eq!(steps_to_tol(&losses), Some(3));
        // Flat trace converges immediately.
        assert_eq!(steps_to_tol(&[2.0, 2.0]), Some(0));
        assert_eq!(steps_to_tol(&[]), None);
        assert_eq!(steps_to_tol(&[f64::NAN, 1.0]), None);
    }

    #[test]
    fn stream_config_family_and_validation() {
        let cfg = StreamConfig {
            run_id: "demo".into(),
            windows: 3,
            spec: WindowSpec::new(4, 2, 1).unwrap(),
            ovs: OvsConfig::tiny(),
            keep_versions: 0,
            recovery: RecoveryPolicy::default(),
            incidents: simulator::IncidentSchedule::default(),
        };
        assert_eq!(cfg.family(), "stream-demo");
    }
}
