//! The append-only observation log: the ingestion substrate.
//!
//! An [`ObservationLog`] records per-link speed readings in **arrival
//! order** — the order the pipeline saw them, which may differ from
//! event-time order (late arrivals are the whole point of the
//! watermark). The log is append-only: entries are never reordered,
//! rewritten or dropped, so replaying a persisted log reproduces the
//! exact arrival sequence — the property the restart-equivalence
//! invariant of [`crate::driver`] rests on.
//!
//! The on-disk format is a line-oriented text file — one
//! `interval link speed` triple per line — using Rust's shortest
//! round-trip float formatting, so `write → read → write` is
//! byte-identical and the re-read speeds are bit-exact.

use crate::{Result, StreamError};
use roadnet::LinkId;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Header line identifying an observation-log file.
const LOG_HEADER: &str = "# cityod-observation-log v1";

/// One per-link speed reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The link the sensor sits on.
    pub link: LinkId,
    /// Event time: the global observation-interval index the reading
    /// belongs to (interval length is fixed per deployment).
    pub interval: u64,
    /// Mean speed over that interval, in m/s.
    pub speed: f64,
}

/// Append-only, arrival-ordered log of observations.
#[derive(Debug, Clone, Default)]
pub struct ObservationLog {
    entries: Vec<Observation>,
}

impl ObservationLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one observation (arrival order).
    pub fn append(&mut self, obs: Observation) {
        self.entries.push(obs);
    }

    /// Appends a batch in its iteration order.
    pub fn extend(&mut self, batch: impl IntoIterator<Item = Observation>) {
        self.entries.extend(batch);
    }

    /// The recorded observations, in arrival order.
    pub fn entries(&self) -> &[Observation] {
        &self.entries
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes the log as a text file (header + one `interval link speed`
    /// line per observation, arrival order preserved).
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = std::fs::File::create(path.as_ref())?;
        let mut w = BufWriter::new(file);
        writeln!(w, "{LOG_HEADER}")?;
        for obs in &self.entries {
            // `{:?}` prints the shortest decimal that parses back to the
            // identical f64 bits — the round-trip the restart invariant
            // needs.
            writeln!(w, "{} {} {:?}", obs.interval, obs.link.0, obs.speed)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Reads a log written by [`ObservationLog::write_to`]. Blank lines
    /// and `#` comments are skipped; any other malformed line is a typed
    /// error, never silently dropped data.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::File::open(path.as_ref())?;
        let reader = BufReader::new(file);
        let mut entries = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let mut parts = text.split_ascii_whitespace();
            let obs = (|| {
                let interval = parts.next()?.parse::<u64>().ok()?;
                let link = parts.next()?.parse::<usize>().ok()?;
                let speed = parts.next()?.parse::<f64>().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                Some(Observation {
                    link: LinkId(link),
                    interval,
                    speed,
                })
            })();
            match obs {
                Some(obs) => entries.push(obs),
                None => {
                    return Err(StreamError::Parse {
                        line: i + 1,
                        message: format!("expected 'interval link speed', got '{text}'"),
                    })
                }
            }
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cityod-obslog-{tag}-{}", std::process::id()))
    }

    #[test]
    fn round_trip_is_bit_exact_and_order_preserving() {
        let mut log = ObservationLog::new();
        // Out-of-order event times, awkward float values.
        log.append(Observation {
            link: LinkId(3),
            interval: 7,
            speed: 13.700000000000001,
        });
        log.extend([
            Observation {
                link: LinkId(0),
                interval: 2,
                speed: 0.1 + 0.2,
            },
            Observation {
                link: LinkId(1),
                interval: 7,
                speed: f64::MIN_POSITIVE,
            },
        ]);
        let path = tmp_path("roundtrip");
        log.write_to(&path).unwrap();
        let back = ObservationLog::read_from(&path).unwrap();
        assert_eq!(back.entries(), log.entries());
        // write -> read -> write is byte-identical.
        let path2 = tmp_path("roundtrip2");
        back.write_to(&path2).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path2);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let path = tmp_path("malformed");
        std::fs::write(&path, "# header\n1 2 3.0\nnot a line\n").unwrap();
        match ObservationLog::read_from(&path) {
            Err(StreamError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
