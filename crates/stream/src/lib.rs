//! # stream — rolling-window online TOD re-estimation
//!
//! The paper's OVS pipeline recovers a TOD tensor from one *batch* of
//! speed observations. This crate closes the loop a live deployment
//! needs — ingest → re-estimate → checkpoint → serve, continuously —
//! in three layers (DESIGN.md §12):
//!
//! 1. **Ingestion** ([`log`], [`window`], [`source`]) — an append-only,
//!    arrival-ordered [`ObservationLog`] of per-link speed readings,
//!    sliced into overlapping rolling windows by a [`WindowSlicer`]
//!    driven by a [`WindowSpec`] `{ length, stride, watermark }`.
//!    Observations whose every containing window has already closed are
//!    counted and dropped (`stream_late_drops_total`), never silently
//!    absorbed. Window assembly is invariant under arrival-order
//!    permutations within the watermark: each cell averages the
//!    *multiset* of its readings in a canonical order.
//! 2. **Online estimator driver** ([`driver`]) — each closed window
//!    becomes an `EstimatorInput`; stage 3 is warm-started from the
//!    previous window's parameters via `OvsTrainer::run_warm_guarded`
//!    (cold start on the first window or after divergence), runs under
//!    the non-finite guard so a poisoned window rolls back instead of
//!    corrupting the stream, and the result is published as the next
//!    version of the `stream-<run-id>` artifact family with window
//!    provenance (interval range, observation count, masked RMSE).
//! 3. **Serving handoff** — `cityod-serve`'s `SnapshotWatcher` follows
//!    the same family via `SnapshotSource::latest_good`, hot-swapping
//!    readers onto window *N*'s view while window *N+1* trains.
//!
//! The streaming invariant that makes this a *system* and not a script:
//! processing N windows in one process is **bit-identical** — final
//! model parameters and artifact fingerprints — to processing the same
//! N windows across a kill/restart at any window boundary, because the
//! warm-start weights round-trip bit-exactly through the artifact store
//! and every source replays deterministically from its seed.

#![warn(missing_docs)]

pub mod driver;
pub mod incidents;
pub mod log;
pub mod report;
pub mod source;
pub mod window;

pub use driver::{StreamConfig, StreamDriver};
pub use incidents::{incident_sweep, IncidentSweepPoint, IncidentSweepReport};
pub use log::{Observation, ObservationLog};
pub use report::{StreamReport, WindowOutcome, WindowStatus};
pub use source::{LogSource, ObservationSource, SimSource, SimSourceConfig};
pub use window::{ClosedWindow, WindowSlicer, WindowSpec};

use std::fmt;

/// Typed failure modes of the streaming subsystem.
#[derive(Debug)]
pub enum StreamError {
    /// Invalid window/stream configuration.
    Config(String),
    /// Ingestion file could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// Artifact store / checkpoint failure.
    Checkpoint(checkpoint::CheckpointError),
    /// Simulator / tensor / training failure.
    Roadnet(roadnet::RoadnetError),
    /// Underlying filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "stream configuration error: {msg}"),
            Self::Parse { line, message } => {
                write!(f, "observation log parse error at line {line}: {message}")
            }
            Self::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Self::Roadnet(e) => write!(f, "{e}"),
            Self::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Checkpoint(e) => Some(e),
            Self::Roadnet(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<checkpoint::CheckpointError> for StreamError {
    fn from(e: checkpoint::CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<roadnet::RoadnetError> for StreamError {
    fn from(e: roadnet::RoadnetError) -> Self {
        Self::Roadnet(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StreamError>;
