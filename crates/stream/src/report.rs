//! Structured run reports: what happened to every window.
//!
//! A [`StreamReport`] is the JSON-serialisable record of one
//! [`crate::driver::StreamDriver::run`]: per-window outcomes (warm or
//! cold start, fit steps, convergence speed, masked RMSE, the published
//! artifact and its content fingerprint) plus stream-level totals. The
//! `Display` impl renders the operator-facing table the
//! `cityod stream run` CLI prints; `--json` emits the serde form.

use std::fmt;

/// What became of one closed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WindowStatus {
    /// Estimated and published as a new artifact version.
    Published,
    /// Closed without a single observation: nothing to estimate.
    Empty,
    /// Both the warm attempt and the cold fallback diverged; nothing was
    /// published and the next window starts cold.
    Failed,
    /// Already published by a previous run of the same family; replay
    /// skipped estimation (restart path).
    Skipped,
}

impl WindowStatus {
    /// Fixed-width table label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Published => "published",
            Self::Empty => "empty",
            Self::Failed => "FAILED",
            Self::Skipped => "skipped",
        }
    }
}

/// Per-window outcome record.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WindowOutcome {
    /// Window index.
    pub window: usize,
    /// First interval covered (inclusive).
    pub start: u64,
    /// One past the last interval covered (exclusive).
    pub end: u64,
    /// Observations absorbed into the window.
    pub observations: usize,
    /// True when stage 3 warm-started from the previous window's model.
    pub warm: bool,
    /// Gradient steps the test-time fit ran.
    pub fit_steps: usize,
    /// First fit step whose loss closed 95% of the gap to the final loss
    /// — the early-stop-independent convergence measure warm-vs-cold
    /// comparisons use.
    pub steps_to_tol: Option<usize>,
    /// Final test-time fit loss.
    pub final_fit_loss: Option<f64>,
    /// RMSE between the window's observed speeds and the simulation of
    /// the recovered TOD, over observed cells only.
    pub masked_rmse: Option<f64>,
    /// Published artifact name (`{family}-vNNN`), when published.
    pub artifact: Option<String>,
    /// Content fingerprint of the published artifact — the serving
    /// layer's ETag for this window.
    pub fingerprint: Option<String>,
    /// What became of the window.
    pub status: WindowStatus,
    /// Wall-clock seconds the window's estimation took.
    pub train_seconds: f64,
}

/// Whole-run record of a streaming session.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StreamReport {
    /// The run id (`stream-<run-id>` is the artifact family).
    pub run_id: String,
    /// The artifact family every window published into.
    pub family: String,
    /// Per-window outcomes, in window order.
    pub windows: Vec<WindowOutcome>,
    /// Observations dropped because every containing window had closed.
    pub late_drops: u64,
    /// Observations dropped for non-finite speed or unknown link.
    pub invalid_drops: u64,
    /// Windows whose published version this run found already present
    /// and replayed past (`None` for a cold boot).
    pub resumed_from: Option<usize>,
}

impl StreamReport {
    /// Number of published windows.
    pub fn published(&self) -> usize {
        self.count(WindowStatus::Published)
    }

    /// Number of windows with the given status.
    pub fn count(&self, status: WindowStatus) -> usize {
        self.windows.iter().filter(|w| w.status == status).count()
    }

    /// Published windows that warm-started.
    pub fn warm_count(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.status == WindowStatus::Published && w.warm)
            .count()
    }

    /// Published windows that cold-started.
    pub fn cold_count(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| w.status == WindowStatus::Published && !w.warm)
            .count()
    }

    /// Mean [`WindowOutcome::steps_to_tol`] over published windows of the
    /// given start kind — the warm-vs-cold convergence comparison.
    pub fn mean_steps_to_tol(&self, warm: bool) -> Option<f64> {
        let steps: Vec<usize> = self
            .windows
            .iter()
            .filter(|w| w.status == WindowStatus::Published && w.warm == warm)
            .filter_map(|w| w.steps_to_tol)
            .collect();
        if steps.is_empty() {
            return None;
        }
        Some(steps.iter().sum::<usize>() as f64 / steps.len() as f64)
    }
}

fn opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.4}"))
}

impl fmt::Display for StreamReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stream '{}' -> family '{}': {} window(s), {} published ({} warm / {} cold), {} late drop(s){}",
            self.run_id,
            self.family,
            self.windows.len(),
            self.published(),
            self.warm_count(),
            self.cold_count(),
            self.late_drops,
            self.resumed_from
                .map(|w| format!(", resumed past window {w}"))
                .unwrap_or_default(),
        )?;
        writeln!(
            f,
            "{:>6} {:>11} {:>5} {:>5} {:>9} {:>8} {:>10} {:>10} {:>9} artifact",
            "window", "range", "obs", "start", "fit_steps", "to_tol", "fit_loss", "rmse", "status"
        )?;
        for w in &self.windows {
            writeln!(
                f,
                "{:>6} {:>11} {:>5} {:>5} {:>9} {:>8} {:>10} {:>10} {:>9} {}",
                w.window,
                format!("[{},{})", w.start, w.end),
                w.observations,
                if w.warm { "warm" } else { "cold" },
                w.fit_steps,
                w.steps_to_tol
                    .map_or_else(|| "-".to_string(), |s| s.to_string()),
                opt(w.final_fit_loss),
                opt(w.masked_rmse),
                w.status.label(),
                w.artifact.as_deref().unwrap_or("-"),
            )?;
        }
        if let (Some(warm), Some(cold)) =
            (self.mean_steps_to_tol(true), self.mean_steps_to_tol(false))
        {
            writeln!(
                f,
                "mean steps to 95% of final loss: warm {warm:.1} vs cold {cold:.1}"
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(window: usize, warm: bool, steps: usize, status: WindowStatus) -> WindowOutcome {
        WindowOutcome {
            window,
            start: (window * 2) as u64,
            end: (window * 2 + 4) as u64,
            observations: 24,
            warm,
            fit_steps: steps * 2,
            steps_to_tol: Some(steps),
            final_fit_loss: Some(0.5),
            masked_rmse: Some(1.25),
            artifact: matches!(status, WindowStatus::Published)
                .then(|| format!("stream-x-v{:03}", window + 1)),
            fingerprint: matches!(status, WindowStatus::Published)
                .then(|| "abc-00000000".to_string()),
            status,
            train_seconds: 0.1,
        }
    }

    fn report() -> StreamReport {
        StreamReport {
            run_id: "x".into(),
            family: "stream-x".into(),
            windows: vec![
                outcome(0, false, 40, WindowStatus::Published),
                outcome(1, true, 10, WindowStatus::Published),
                outcome(2, true, 12, WindowStatus::Published),
                outcome(3, false, 0, WindowStatus::Empty),
            ],
            late_drops: 3,
            invalid_drops: 0,
            resumed_from: None,
        }
    }

    #[test]
    fn counts_and_convergence_means() {
        let r = report();
        assert_eq!(r.published(), 3);
        assert_eq!(r.warm_count(), 2);
        assert_eq!(r.cold_count(), 1);
        assert_eq!(r.count(WindowStatus::Empty), 1);
        assert_eq!(r.mean_steps_to_tol(true), Some(11.0));
        assert_eq!(r.mean_steps_to_tol(false), Some(40.0));
    }

    #[test]
    fn json_round_trip_and_display() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: StreamReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.windows.len(), r.windows.len());
        assert_eq!(back.family, r.family);
        let text = format!("{r}");
        assert!(text.contains("3 published (2 warm / 1 cold)"));
        assert!(text.contains("stream-x-v002"));
        assert!(text.contains("warm 11.0 vs cold 40.0"));
    }
}
