//! Observation sources: where the arrival stream comes from.
//!
//! A [`ObservationSource`] yields batches of [`Observation`]s in
//! **arrival order**. Two implementations:
//!
//! * [`SimSource`] — the simulator-driven replay source: each *frame*
//!   (`stride` intervals) re-runs the dataset's ground-truth demand —
//!   scaled by a seeded per-frame drift factor, so consecutive windows
//!   see genuinely different traffic — through the simulator, then emits
//!   the resulting per-link speeds in a seeded shuffled order with a
//!   seeded fraction held back and re-delivered several frames later
//!   (the late arrivals the watermark machinery exists for). Every draw
//!   comes from a counter-based RNG stream, so the full arrival sequence
//!   is a pure function of `(dataset, config, seed)` — replaying the
//!   source reproduces it bit-exactly, which is what lets a restarted
//!   driver rebuild window tensors without persisting them.
//! * [`LogSource`] — replays a persisted [`ObservationLog`] in its
//!   recorded arrival order.

use crate::log::{Observation, ObservationLog};
use crate::window::WindowSpec;
use crate::{Result, StreamError};
use datagen::Dataset;
use neural::rng::Rng64;
use roadnet::{LinkId, OdPairId, TodTensor};
use simulator::{IncidentSchedule, Simulation};
use std::collections::BTreeMap;

/// Stream-index salt for the per-frame demand-drift draw.
const DRIFT_SALT: u64 = 0x5EED_D51F;
/// Stream-index salt for the per-frame arrival shuffle.
const SHUFFLE_SALT: u64 = 0x5EED_5871;
/// Stream-index salt for the per-frame late-arrival selection.
const LATE_SALT: u64 = 0x5EED_1A7E;

/// A producer of arrival-ordered observation batches.
pub trait ObservationSource {
    /// The next batch of observations, in arrival order. An empty batch
    /// means the source is exhausted (a [`SimSource`] never is).
    fn next_batch(&mut self) -> Result<Vec<Observation>>;
}

/// Knobs of the simulator-driven replay source.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct SimSourceConfig {
    /// Master seed of every per-frame draw (drift, shuffle, lateness).
    pub seed: u64,
    /// Relative demand drift amplitude: frame `f` scales the ground-truth
    /// demand by `1 + drift * u_f` with `u_f` uniform in `[-1, 1]`.
    pub drift: f64,
    /// Fraction of each frame's observations held back and delivered
    /// [`SimSourceConfig::late_delay_frames`] frames later.
    pub late_frac: f64,
    /// How many frames a held-back observation is delayed.
    pub late_delay_frames: u64,
}

impl Default for SimSourceConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            drift: 0.2,
            late_frac: 0.0,
            late_delay_frames: 2,
        }
    }
}

/// Simulator-driven replay source (see module docs). Infinite: every
/// call to [`ObservationSource::next_batch`] produces one frame.
pub struct SimSource {
    ds: Dataset,
    spec: WindowSpec,
    cfg: SimSourceConfig,
    frame: u64,
    // Incident timeline in *stream* ticks (tick 0 = interval 0 of frame
    // 0); each frame receives the slice that overlaps it, rebased.
    incidents: IncidentSchedule,
    // Held-back observations, keyed by the frame that releases them.
    held: BTreeMap<u64, Vec<Observation>>,
}

impl SimSource {
    /// A source replaying `ds`'s ground-truth demand in frames of
    /// `spec.stride` intervals.
    pub fn new(ds: Dataset, spec: WindowSpec, cfg: SimSourceConfig) -> Result<Self> {
        if !(0.0..1.0).contains(&cfg.late_frac) {
            return Err(StreamError::Config(format!(
                "late_frac must be in [0, 1), got {}",
                cfg.late_frac
            )));
        }
        if !cfg.drift.is_finite() || cfg.drift.abs() >= 1.0 {
            return Err(StreamError::Config(format!(
                "drift must be finite with |drift| < 1 (demand stays positive), got {}",
                cfg.drift
            )));
        }
        Ok(Self {
            ds,
            spec,
            cfg,
            frame: 0,
            incidents: IncidentSchedule::default(),
            held: BTreeMap::new(),
        })
    }

    /// Installs a network-incident timeline, in stream ticks (tick 0 is
    /// the start of interval 0). Each frame's simulation receives the
    /// overlapping slice rebased to its local clock, so the same timeline
    /// replays bit-identically across frames, restarts and thread counts.
    pub fn with_incidents(mut self, incidents: IncidentSchedule) -> Self {
        self.incidents = incidents;
        self
    }

    /// The dataset the source replays.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// The demand tensor frame `f` pushes through the simulator: the
    /// ground-truth columns (wrapped modulo the dataset's day length)
    /// scaled by the frame's seeded drift factor.
    fn frame_tod(&self, f: u64) -> Result<TodTensor> {
        let stride = self.spec.stride;
        let n_od = self.ds.n_od();
        let day = self.ds.n_intervals() as u64;
        let mut drift_rng = Rng64::for_index(self.cfg.seed ^ DRIFT_SALT, f);
        let factor = 1.0 + self.cfg.drift * drift_rng.uniform_in(-1.0, 1.0);
        let mut data = vec![0.0_f64; n_od * stride];
        for od in 0..n_od {
            for j in 0..stride {
                let src_t = ((f * stride as u64 + j as u64) % day) as usize;
                if let Some(cell) = data.get_mut(od * stride + j) {
                    *cell = self.ds.groundtruth_tod.get(OdPairId(od), src_t) * factor;
                }
            }
        }
        Ok(TodTensor::from_data(n_od, stride, data)?)
    }
}

impl ObservationSource for SimSource {
    fn next_batch(&mut self) -> Result<Vec<Observation>> {
        let f = self.frame;
        self.frame += 1;
        let stride = self.spec.stride;
        let base = f * stride as u64;

        // Simulate this frame's drifted demand; the sim seed is a pure
        // function of (master seed, frame), so a replay regenerates the
        // identical speed field.
        let tod = self.frame_tod(f)?;
        let sim_cfg = self
            .ds
            .sim_config
            .clone()
            .with_intervals(stride)
            .with_seed(Rng64::stream_seed(self.cfg.seed, f));
        // Rebase the incident timeline onto this frame's local clock.
        // Stream tick 0 of the frame is `base * ticks_per_interval`; the
        // frame's own horizon (cooldown included) bounds the slice.
        let clipped = self
            .incidents
            .clipped(base * sim_cfg.ticks_per_interval(), sim_cfg.total_ticks());
        let mut sim = Simulation::new(&self.ds.net, &self.ds.ods, sim_cfg)?;
        if !clipped.is_empty() {
            sim = sim.with_incidents(clipped)?;
        }
        let out = sim.run(&tod)?;

        // Emit one observation per (link, interval) cell, shuffled.
        let n_links = self.ds.n_links();
        let mut batch: Vec<Observation> = Vec::with_capacity(n_links * stride);
        for link in 0..n_links {
            for j in 0..stride {
                batch.push(Observation {
                    link: LinkId(link),
                    interval: base + j as u64,
                    speed: out.speed.get(LinkId(link), j),
                });
            }
        }
        let mut shuffle_rng = Rng64::for_index(self.cfg.seed ^ SHUFFLE_SALT, f);
        for i in (1..batch.len()).rev() {
            batch.swap(i, shuffle_rng.index(i + 1));
        }

        // Hold back a seeded fraction for delayed delivery.
        if self.cfg.late_frac > 0.0 {
            let mut late_rng = Rng64::for_index(self.cfg.seed ^ LATE_SALT, f);
            let release_at = f + self.cfg.late_delay_frames.max(1);
            let mut on_time = Vec::with_capacity(batch.len());
            for obs in batch {
                if late_rng.uniform() < self.cfg.late_frac {
                    self.held.entry(release_at).or_default().push(obs);
                } else {
                    on_time.push(obs);
                }
            }
            batch = on_time;
        }

        // Release everything whose delay has elapsed, after this frame's
        // fresh observations (they are the stragglers, after all).
        let due: Vec<u64> = self.held.range(..=f).map(|(&k, _)| k).collect();
        for key in due {
            if let Some(released) = self.held.remove(&key) {
                batch.extend(released);
            }
        }
        Ok(batch)
    }
}

/// Replays a persisted [`ObservationLog`] in recorded arrival order, in
/// batches of `chunk` observations (the final batch may be shorter).
pub struct LogSource {
    log: ObservationLog,
    pos: usize,
    chunk: usize,
}

impl LogSource {
    /// A source replaying `log` in one batch per [`LogSource::next_batch`]
    /// call of at most `chunk` observations (`chunk == 0` means all at
    /// once).
    pub fn new(log: ObservationLog, chunk: usize) -> Self {
        Self { log, pos: 0, chunk }
    }
}

impl ObservationSource for LogSource {
    fn next_batch(&mut self) -> Result<Vec<Observation>> {
        let entries = self.log.entries();
        if self.pos >= entries.len() {
            return Ok(Vec::new());
        }
        let take = if self.chunk == 0 {
            entries.len() - self.pos
        } else {
            self.chunk.min(entries.len() - self.pos)
        };
        let batch = entries.iter().skip(self.pos).take(take).copied().collect();
        self.pos += take;
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dataset::DatasetSpec;
    use datagen::TodPattern;

    fn tiny_dataset(t: usize) -> Dataset {
        Dataset::synthetic(
            TodPattern::Gaussian,
            &DatasetSpec {
                t,
                interval_s: 120.0,
                train_samples: 2,
                demand_scale: 0.05,
                seed: 3,
            },
        )
        .unwrap()
    }

    fn spec(length: usize, stride: usize) -> WindowSpec {
        WindowSpec::new(length, stride, 0).unwrap()
    }

    #[test]
    fn sim_source_replays_bit_identically_from_seed() {
        let ds = tiny_dataset(4);
        let cfg = SimSourceConfig {
            seed: 11,
            drift: 0.3,
            late_frac: 0.25,
            late_delay_frames: 2,
        };
        let mut a = SimSource::new(ds.clone(), spec(4, 2), cfg).unwrap();
        let mut b = SimSource::new(ds, spec(4, 2), cfg).unwrap();
        for _ in 0..6 {
            let ba = a.next_batch().unwrap();
            let bb = b.next_batch().unwrap();
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn sim_source_covers_every_cell_and_drifts_demand() {
        let ds = tiny_dataset(4);
        let n_links = ds.n_links();
        let mut src = SimSource::new(
            ds,
            spec(4, 2),
            SimSourceConfig {
                seed: 5,
                drift: 0.4,
                late_frac: 0.0,
                ..SimSourceConfig::default()
            },
        )
        .unwrap();
        let first = src.next_batch().unwrap();
        // One observation per (link, interval) cell of the frame.
        assert_eq!(first.len(), n_links * 2);
        assert!(first.iter().all(|o| o.interval < 2));
        assert!(first.iter().all(|o| o.speed.is_finite() && o.speed > 0.0));
        // Different frames see different (drifted) traffic.
        let second = src.next_batch().unwrap();
        assert!(second.iter().all(|o| (2..4).contains(&o.interval)));
        assert_ne!(
            first.iter().map(|o| o.speed.to_bits()).collect::<Vec<_>>(),
            second.iter().map(|o| o.speed.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn late_fraction_is_held_and_released_later() {
        let ds = tiny_dataset(4);
        let n_links = ds.n_links();
        let mut src = SimSource::new(
            ds,
            spec(4, 2),
            SimSourceConfig {
                seed: 9,
                drift: 0.0,
                late_frac: 0.3,
                late_delay_frames: 2,
            },
        )
        .unwrap();
        let per_frame = n_links * 2;
        let f0 = src.next_batch().unwrap();
        let f1 = src.next_batch().unwrap();
        // Some of frames 0-1 was held back.
        assert!(f0.len() < per_frame);
        assert!(f1.len() < per_frame);
        // By frame 2, frame 0's stragglers are delivered (intervals < 2
        // arriving when the frontier sits at >= 4).
        let f2 = src.next_batch().unwrap();
        let stragglers = f2.iter().filter(|o| o.interval < 2).count();
        assert_eq!(stragglers, per_frame - f0.len());
        // Nothing is ever lost: total emissions catch back up.
        let total = f0.len() + f1.len() + f2.len() + src.next_batch().unwrap().len();
        assert!(total >= 3 * per_frame);
    }

    #[test]
    fn incident_timeline_perturbs_only_overlapping_frames() {
        use simulator::{IncidentKind, IncidentTarget, ScheduledIncident};
        let ds = tiny_dataset(4);
        let cfg = SimSourceConfig {
            seed: 11,
            drift: 0.0,
            late_frac: 0.0,
            late_delay_frames: 2,
        };
        let tpi = ds.sim_config.ticks_per_interval();
        // Closure of link 0 covering exactly frame 1 (stream intervals
        // [2, 4), i.e. ticks [2*tpi, 4*tpi)).
        let schedule = IncidentSchedule::new(vec![ScheduledIncident {
            kind: IncidentKind::Closure,
            target: IncidentTarget::Link(LinkId(0)),
            onset_tick: 2 * tpi,
            duration_ticks: 2 * tpi,
            severity: 1.0,
        }]);
        let mut clean = SimSource::new(ds.clone(), spec(4, 2), cfg).unwrap();
        let mut hit = SimSource::new(ds.clone(), spec(4, 2), cfg)
            .unwrap()
            .with_incidents(schedule.clone());
        let mut replay = SimSource::new(ds, spec(4, 2), cfg)
            .unwrap()
            .with_incidents(schedule);
        let speeds = |b: &[Observation]| b.iter().map(|o| o.speed.to_bits()).collect::<Vec<_>>();
        // Frame 0 precedes the incident: bit-identical to the clean run.
        let (c0, h0, r0) = (
            clean.next_batch().unwrap(),
            hit.next_batch().unwrap(),
            replay.next_batch().unwrap(),
        );
        assert_eq!(speeds(&c0), speeds(&h0));
        // Frame 1 overlaps it: the speed field differs, but replays
        // bit-identically from the same seed + schedule.
        let (c1, h1, r1) = (
            clean.next_batch().unwrap(),
            hit.next_batch().unwrap(),
            replay.next_batch().unwrap(),
        );
        assert_ne!(speeds(&c1), speeds(&h1));
        assert_eq!(speeds(&h0), speeds(&r0));
        assert_eq!(speeds(&h1), speeds(&r1));
        // Frame 2 is clear again.
        let (c2, h2) = (clean.next_batch().unwrap(), hit.next_batch().unwrap());
        assert_eq!(speeds(&c2), speeds(&h2));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ds = tiny_dataset(4);
        let bad_late = SimSourceConfig {
            late_frac: 1.0,
            ..SimSourceConfig::default()
        };
        assert!(SimSource::new(ds.clone(), spec(4, 2), bad_late).is_err());
        let bad_drift = SimSourceConfig {
            drift: 1.5,
            ..SimSourceConfig::default()
        };
        assert!(SimSource::new(ds, spec(4, 2), bad_drift).is_err());
    }

    #[test]
    fn log_source_replays_in_chunks() {
        let mut log = ObservationLog::new();
        for i in 0..5 {
            log.append(Observation {
                link: LinkId(0),
                interval: i,
                speed: i as f64,
            });
        }
        let mut src = LogSource::new(log.clone(), 2);
        let mut replayed = Vec::new();
        loop {
            let batch = src.next_batch().unwrap();
            if batch.is_empty() {
                break;
            }
            replayed.extend(batch);
        }
        assert_eq!(replayed, log.entries());
        // chunk == 0: everything in one batch.
        let mut all = LogSource::new(log.clone(), 0);
        assert_eq!(all.next_batch().unwrap().len(), 5);
        assert!(all.next_batch().unwrap().is_empty());
    }
}
