//! The incident sweep: degradation and recovery across a severity ×
//! duration grid.
//!
//! For every `(severity, duration)` point of a [`fault::IncidentSweep`]
//! template this runner replays the same rolling-window stream with one
//! scheduled incident straddling the *degradation window* (window 1 of
//! the stream): window 0 establishes the pre-incident baseline, the
//! windows the incident overlaps measure degradation, and the windows
//! after clearance prove recovery — the warm→cold fallback heals the
//! estimator and the masked RMSE returns to within
//! [`RECOVERED_FACTOR`] of the baseline.
//!
//! Everything is deterministic: point `i` draws its source seed from
//! `Rng64::stream_seed(seed, i)` and the incident schedule is purely
//! declarative, so the whole grid — including every per-window masked
//! RMSE — replays bit-identically from `(dataset, sweep, seed)`.

use crate::driver::{StreamConfig, StreamDriver};
use crate::report::{StreamReport, WindowStatus};
use crate::source::{SimSource, SimSourceConfig};
use crate::window::WindowSpec;
use crate::{Result, StreamError};
use checkpoint::ArtifactStore;
use datagen::Dataset;
use fault::IncidentSweep;
use neural::rng::Rng64;
use ovs_core::config::OvsConfig;
use simulator::{IncidentSchedule, ScheduledIncident};
use std::fmt;
use std::path::Path;

/// A window counts as degraded once its masked RMSE exceeds the
/// pre-incident baseline by this factor.
pub const DEGRADED_FACTOR: f64 = 1.05;

/// A post-clearance window counts as recovered once its masked RMSE is
/// back within this factor of the pre-incident baseline.
pub const RECOVERED_FACTOR: f64 = 1.10;

/// Upper bound on windows per grid point: one pre-incident baseline, the
/// degradation windows, and one recovery window must fit.
const MAX_WINDOWS: usize = 8;

/// Outcome of one `(severity, duration)` grid point.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct IncidentSweepPoint {
    /// Incident severity of this point.
    pub severity: f64,
    /// Incident duration in ticks.
    pub duration_ticks: u64,
    /// Global onset tick of the incident in the stream's clock.
    pub onset_tick: u64,
    /// Windows the point's stream processed.
    pub windows: usize,
    /// Masked RMSE of the pre-incident baseline window.
    pub pre_rmse: Option<f64>,
    /// Worst masked RMSE across the windows the incident overlaps.
    pub during_rmse: Option<f64>,
    /// Masked RMSE of the final (post-clearance) window.
    pub post_rmse: Option<f64>,
    /// Did the incident measurably degrade estimation
    /// (`during > pre * DEGRADED_FACTOR`)?
    pub degraded: bool,
    /// Did estimation recover after clearance
    /// (`post <= pre * RECOVERED_FACTOR`)?
    pub recovered: bool,
    /// Did any window fail (both warm and cold fits diverged)?
    pub diverged: bool,
}

impl IncidentSweepPoint {
    /// A run that diverged and never made it back: the one outcome the
    /// robustness contract forbids.
    pub fn diverged_unhealed(&self) -> bool {
        self.diverged && !self.recovered
    }
}

/// The full severity × duration grid, in row-major severity-then-duration
/// order.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct IncidentSweepReport {
    /// Incident kind label (`closure` / `capacity_drop` /
    /// `signal_outage`).
    pub kind: String,
    /// The link every template incident targets.
    pub target_link: u64,
    /// Per-point outcomes.
    pub points: Vec<IncidentSweepPoint>,
}

impl IncidentSweepReport {
    /// Points whose degradation window measurably degraded.
    pub fn degraded_count(&self) -> usize {
        self.points.iter().filter(|p| p.degraded).count()
    }

    /// Points whose post-clearance window recovered to baseline.
    pub fn recovered_count(&self) -> usize {
        self.points.iter().filter(|p| p.recovered).count()
    }

    /// Points that diverged and never healed — must be zero for the
    /// robustness contract to hold.
    pub fn diverged_unhealed_count(&self) -> usize {
        self.points.iter().filter(|p| p.diverged_unhealed()).count()
    }
}

fn opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.4}"))
}

impl fmt::Display for IncidentSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "incident sweep: kind={} link={} — {} point(s), {} degraded, {} recovered, {} diverged-unhealed",
            self.kind,
            self.target_link,
            self.points.len(),
            self.degraded_count(),
            self.recovered_count(),
            self.diverged_unhealed_count(),
        )?;
        writeln!(
            f,
            "{:>9} {:>9} {:>7} {:>10} {:>10} {:>10} {:>9} {:>10} {:>9}",
            "severity",
            "duration",
            "windows",
            "pre_rmse",
            "during",
            "post",
            "degraded",
            "recovered",
            "diverged"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>9.2} {:>9} {:>7} {:>10} {:>10} {:>10} {:>9} {:>10} {:>9}",
                p.severity,
                p.duration_ticks,
                p.windows,
                opt(p.pre_rmse),
                opt(p.during_rmse),
                opt(p.post_rmse),
                if p.degraded { "yes" } else { "no" },
                if p.recovered { "yes" } else { "no" },
                if p.diverged { "yes" } else { "no" },
            )?;
        }
        Ok(())
    }
}

/// Runs the severity × duration grid of `sweep` against `ds`.
///
/// Each grid point gets its own artifact store under
/// `base_dir/point-<idx>` and its own seeded source stream
/// (`Rng64::stream_seed(seed, idx)`, zero drift and lateness so the only
/// thing that varies across windows is the incident). The template's
/// `onset_tick` is interpreted as an offset *into the degradation
/// window* — window 1 of the stream — so every point follows the same
/// baseline → degradation → recovery arc.
pub fn incident_sweep(
    ds: &Dataset,
    ovs: &OvsConfig,
    sweep: &IncidentSweep,
    seed: u64,
    base_dir: &Path,
) -> Result<IncidentSweepReport> {
    if !sweep.is_active() {
        return Err(StreamError::Config(
            "incident sweep needs non-empty severity and duration axes".into(),
        ));
    }
    let t = ds.n_intervals();
    let spec = WindowSpec::new(t, t, 0)?;
    let tpi = ds.sim_config.ticks_per_interval();
    let span = t as u64 * tpi;

    let mut points = Vec::new();
    for (idx, template) in sweep.points().into_iter().enumerate() {
        // Rebase the template onset into window 1; window 0 stays clean
        // as the pre-incident baseline.
        if template.onset_tick >= span {
            return Err(StreamError::Config(format!(
                "sweep onset_tick {} does not fall inside the degradation window ({span} ticks)",
                template.onset_tick
            )));
        }
        let onset = span + template.onset_tick;
        let end = onset + template.duration_ticks;
        let last_hit_window = (end.saturating_sub(1) / span) as usize;
        let windows = last_hit_window + 2;
        if windows > MAX_WINDOWS {
            return Err(StreamError::Config(format!(
                "sweep duration {} spans {} windows; at most {MAX_WINDOWS} are allowed \
                 (shorten the duration or enlarge the dataset's day)",
                template.duration_ticks,
                windows - 2
            )));
        }
        let schedule = IncidentSchedule::new(vec![ScheduledIncident {
            onset_tick: onset,
            ..template
        }]);

        let src_cfg = SimSourceConfig {
            seed: Rng64::stream_seed(seed, idx as u64),
            drift: 0.0,
            late_frac: 0.0,
            late_delay_frames: 2,
        };
        let mut source =
            SimSource::new(ds.clone(), spec, src_cfg)?.with_incidents(schedule.clone());
        let cfg = StreamConfig {
            run_id: format!("sweep-{idx}"),
            windows,
            spec,
            ovs: ovs.clone(),
            keep_versions: 0,
            recovery: Default::default(),
            incidents: schedule,
        };
        let store = ArtifactStore::open(base_dir.join(format!("point-{idx}")))?;
        let report = StreamDriver::new(ds, cfg)?.run(&store, &mut source)?;
        points.push(score_point(&report, &template, onset, span, windows));
        obs::global().counter("stream_incident_points_total").inc();
    }

    Ok(IncidentSweepReport {
        kind: sweep.kind.label().to_string(),
        target_link: sweep.target_link,
        points,
    })
}

/// Reduces one point's stream report to its degradation/recovery verdict.
fn score_point(
    report: &StreamReport,
    template: &ScheduledIncident,
    onset: u64,
    span: u64,
    windows: usize,
) -> IncidentSweepPoint {
    let end = onset + template.duration_ticks;
    let rmse_of = |w: usize| report.windows.get(w).and_then(|o| o.masked_rmse);
    let pre = rmse_of(0);
    let during = report
        .windows
        .iter()
        .filter(|o| {
            // Tiled windows: window w covers stream ticks
            // [w * span, (w+1) * span).
            let w_start = o.window as u64 * span;
            let w_end = w_start + span;
            w_start < end && onset < w_end
        })
        .filter_map(|o| o.masked_rmse)
        .fold(None::<f64>, |acc, r| Some(acc.map_or(r, |a| a.max(r))));
    let post = report.windows.last().and_then(|o| o.masked_rmse);
    let diverged = report.count(WindowStatus::Failed) > 0;
    let degraded = matches!((pre, during), (Some(p), Some(d)) if d > p * DEGRADED_FACTOR);
    let recovered = matches!((pre, post), (Some(p), Some(q)) if q <= p * RECOVERED_FACTOR);
    IncidentSweepPoint {
        severity: template.severity,
        duration_ticks: template.duration_ticks,
        onset_tick: onset,
        windows,
        pre_rmse: pre,
        during_rmse: during,
        post_rmse: post,
        degraded,
        recovered,
        diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::WindowOutcome;

    fn outcome(window: usize, rmse: Option<f64>, status: WindowStatus) -> WindowOutcome {
        WindowOutcome {
            window,
            start: (window * 4) as u64,
            end: (window * 4 + 4) as u64,
            observations: 16,
            warm: window > 0,
            fit_steps: 10,
            steps_to_tol: None,
            final_fit_loss: None,
            masked_rmse: rmse,
            artifact: None,
            fingerprint: None,
            status,
            train_seconds: 0.0,
        }
    }

    fn report(rmses: &[Option<f64>]) -> StreamReport {
        StreamReport {
            run_id: "sweep-0".into(),
            family: "stream-sweep-0".into(),
            windows: rmses
                .iter()
                .enumerate()
                .map(|(w, &r)| {
                    let status = if r.is_some() {
                        WindowStatus::Published
                    } else {
                        WindowStatus::Failed
                    };
                    outcome(w, r, status)
                })
                .collect(),
            late_drops: 0,
            invalid_drops: 0,
            resumed_from: None,
        }
    }

    fn template(duration: u64) -> ScheduledIncident {
        ScheduledIncident {
            kind: simulator::IncidentKind::Closure,
            target: simulator::IncidentTarget::Link(roadnet::LinkId(0)),
            onset_tick: 0,
            duration_ticks: duration,
            severity: 1.0,
        }
    }

    #[test]
    fn degradation_and_recovery_are_scored_against_baseline() {
        // span 8 ticks/window, incident [8, 16): window 1 degrades,
        // window 2 recovers.
        let r = report(&[Some(1.0), Some(2.0), Some(1.02)]);
        let p = score_point(&r, &template(8), 8, 8, 3);
        assert!(p.degraded);
        assert!(p.recovered);
        assert!(!p.diverged);
        assert_eq!(p.pre_rmse, Some(1.0));
        assert_eq!(p.during_rmse, Some(2.0));
        assert_eq!(p.post_rmse, Some(1.02));
    }

    #[test]
    fn unrecovered_tail_is_flagged() {
        let r = report(&[Some(1.0), Some(2.0), Some(1.5)]);
        let p = score_point(&r, &template(8), 8, 8, 3);
        assert!(p.degraded);
        assert!(!p.recovered);
    }

    #[test]
    fn failed_windows_mark_divergence() {
        let r = report(&[Some(1.0), None, Some(1.01)]);
        let p = score_point(&r, &template(8), 8, 8, 3);
        assert!(p.diverged);
        assert!(p.recovered, "healed after the failed window");
        assert!(!p.diverged_unhealed());
        let r = report(&[Some(1.0), None, Some(9.0)]);
        let p = score_point(&r, &template(8), 8, 8, 3);
        assert!(p.diverged_unhealed());
    }

    #[test]
    fn report_counts_and_table_render() {
        let r = report(&[Some(1.0), Some(2.0), Some(1.02)]);
        let p = score_point(&r, &template(8), 8, 8, 3);
        let rep = IncidentSweepReport {
            kind: "closure".into(),
            target_link: 0,
            points: vec![p],
        };
        assert_eq!(rep.degraded_count(), 1);
        assert_eq!(rep.recovered_count(), 1);
        assert_eq!(rep.diverged_unhealed_count(), 0);
        let text = format!("{rep}");
        assert!(text.contains("1 degraded, 1 recovered, 0 diverged-unhealed"));
        assert!(text.contains("severity"));
    }
}
