//! The incident robustness acceptance tests: a closure must measurably
//! degrade online estimation while active, the estimator must recover to
//! within 10% of the pre-incident baseline after clearance, and the
//! whole arc — including a kill/restart while the incident is live —
//! must replay bit-identically from the plan seed. CI runs this binary
//! under `CITYOD_THREADS=1` and `CITYOD_THREADS=4` to prove the arc is
//! also thread-count independent.

use checkpoint::store::ArtifactStore;
use checkpoint::{RetryPolicy, SystemClock};
use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use fault::IncidentSweep;
use neural::Matrix;
use ovs_core::artifact::model_weights;
use ovs_core::config::OvsConfig;
use ovs_core::trainer::RecoveryPolicy;
use simulator::{IncidentKind, IncidentSchedule, IncidentTarget, ScheduledIncident};
use std::path::{Path, PathBuf};
use stream::incidents::RECOVERED_FACTOR;
use stream::{
    incident_sweep, IncidentSweepReport, SimSource, SimSourceConfig, StreamConfig, StreamDriver,
    WindowSpec,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("stream-incident-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The same grid + demand the CLI's `faults run grid3x3` smoke uses:
/// strong enough that severing one link visibly bends link speeds.
fn dataset() -> Dataset {
    Dataset::synthetic(
        TodPattern::Gaussian,
        &DatasetSpec {
            t: 3,
            interval_s: 300.0,
            train_samples: 6,
            demand_scale: 0.15,
            seed: 7,
        },
    )
    .unwrap()
}

/// One-point severity x duration grid: a full closure of link 0 lasting
/// two thirds of the degradation window.
fn sweep() -> IncidentSweep {
    IncidentSweep {
        kind: IncidentKind::Closure,
        target_link: 0,
        onset_tick: 0,
        severities: vec![1.0],
        duration_ticks: vec![600],
    }
}

fn run_sweep(tag: &str) -> IncidentSweepReport {
    let tmp = TempDir::new(tag);
    incident_sweep(
        &dataset(),
        &OvsConfig::tiny().with_seed(7),
        &sweep(),
        7,
        tmp.path(),
    )
    .unwrap()
}

#[test]
fn closure_degrades_then_recovers_within_ten_percent() {
    roadnet::parallel::init_global(None);
    let report = run_sweep("arc");
    assert_eq!(report.points.len(), 1);
    let point = &report.points[0];
    let (pre, during, post) = (
        point.pre_rmse.expect("baseline window published"),
        point.during_rmse.expect("degradation window published"),
        point.post_rmse.expect("recovery window published"),
    );
    assert!(
        point.degraded && during > pre,
        "closure must raise masked RMSE while active: pre {pre:.4}, during {during:.4}"
    );
    assert!(
        point.recovered && post <= pre * RECOVERED_FACTOR,
        "post-clearance window must be within 10% of the pre-incident \
         baseline: pre {pre:.4}, post {post:.4}"
    );
    assert!(!point.diverged, "no window may exhaust the retry budget");
    assert_eq!(report.diverged_unhealed_count(), 0);
}

#[test]
fn sweep_replays_bit_identically_from_plan_seed() {
    roadnet::parallel::init_global(None);
    let threads = roadnet::parallel::current_threads();
    let one = run_sweep("replay-a");
    let two = run_sweep("replay-b");
    let (a, b) = (
        serde_json::to_string(&one).unwrap(),
        serde_json::to_string(&two).unwrap(),
    );
    assert_eq!(
        a, b,
        "threads={threads}: the sweep report (every per-window masked RMSE \
         included) must replay bit-identically from (dataset, sweep, seed)"
    );
}

// --- restart equivalence with an incident straddling the boundary -----

const T: usize = 4;
const WINDOWS: usize = 4;

fn restart_dataset() -> Dataset {
    Dataset::synthetic(
        TodPattern::Gaussian,
        &DatasetSpec {
            t: T,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.05,
            seed: 3,
        },
    )
    .unwrap()
}

/// A closure straddling every kill boundary the test exercises: with
/// window length 4 and stride 2 (ticks-per-interval 120), windows 1..3
/// all overlap the active range `[300, 900)`.
fn straddling_incidents() -> IncidentSchedule {
    IncidentSchedule::new(vec![ScheduledIncident {
        kind: IncidentKind::Closure,
        target: IncidentTarget::Link(roadnet::LinkId(1)),
        onset_tick: 300,
        duration_ticks: 600,
        severity: 0.8,
    }])
}

fn restart_config(windows: usize) -> StreamConfig {
    StreamConfig {
        run_id: "incident-restart".into(),
        windows,
        spec: WindowSpec::new(T, 2, 1).unwrap(),
        ovs: OvsConfig::tiny().with_seed(17),
        keep_versions: 0,
        recovery: RecoveryPolicy::default(),
        incidents: straddling_incidents(),
    }
}

fn restart_source(ds: &Dataset) -> SimSource {
    SimSource::new(
        ds.clone(),
        restart_config(WINDOWS).spec,
        SimSourceConfig {
            seed: 41,
            drift: 0.2,
            late_frac: 0.1,
            late_delay_frames: 1,
        },
    )
    .unwrap()
    .with_incidents(straddling_incidents())
}

fn family_state(store: &ArtifactStore) -> (Vec<(String, String)>, Vec<Matrix>) {
    let mut versions: Vec<String> = store
        .names()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("stream-incident-restart-"))
        .collect();
    versions.sort();
    let fingerprints = versions
        .iter()
        .map(|name| {
            let snap = store.snapshot(name).unwrap();
            (name.clone(), snap.fingerprint().to_string())
        })
        .collect();
    let latest = store
        .latest_good(
            "stream-incident-restart",
            &RetryPolicy::default(),
            &SystemClock,
        )
        .unwrap()
        .unwrap();
    let weights = model_weights(latest.artifact(), &restart_config(WINDOWS).ovs).unwrap();
    (fingerprints, weights)
}

#[test]
fn restart_while_incident_active_is_bit_identical() {
    let threads = roadnet::parallel::init_global(None);
    let ds = restart_dataset();

    let tmp = TempDir::new("straight");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    {
        let mut src = restart_source(&ds);
        let mut driver = StreamDriver::new(&ds, restart_config(WINDOWS)).unwrap();
        let report = driver.run(&store, &mut src).unwrap();
        assert_eq!(report.published(), WINDOWS);
    }
    let (reference_versions, reference_weights) = family_state(&store);
    assert_eq!(reference_versions.len(), WINDOWS);

    // Kill at every boundary — including mid-incident — and restart.
    for kill_after in 1..WINDOWS {
        let tmp = TempDir::new(&format!("kill{kill_after}"));
        let store = ArtifactStore::open(tmp.path()).unwrap();
        {
            let mut src = restart_source(&ds);
            let mut driver = StreamDriver::new(&ds, restart_config(kill_after)).unwrap();
            let report = driver.run(&store, &mut src).unwrap();
            assert_eq!(report.published(), kill_after);
        }
        let mut src = restart_source(&ds);
        let mut driver = StreamDriver::new(&ds, restart_config(WINDOWS)).unwrap();
        let report = driver.run(&store, &mut src).unwrap();
        assert_eq!(report.resumed_from, Some(kill_after - 1));
        assert_eq!(report.published() + kill_after, WINDOWS);

        let (versions, weights) = family_state(&store);
        assert_eq!(
            versions, reference_versions,
            "threads={threads}: version names + fingerprints must match after \
             a restart at window boundary {kill_after} with the incident live"
        );
        assert_eq!(
            weights, reference_weights,
            "threads={threads}: final model weights must be bit-identical after \
             a mid-incident restart at boundary {kill_after}"
        );
    }
}
