//! End-to-end driver tests: windows in, artifact versions out — warm
//! starts converging faster than cold, divergence falling back instead of
//! corrupting the family, empty and all-late windows passing through
//! harmlessly.

use checkpoint::store::ArtifactStore;
use checkpoint::{RetryPolicy, SystemClock};
use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use ovs_core::artifact::recovered_tod;
use ovs_core::config::OvsConfig;
use ovs_core::trainer::{RecoveryPolicy, Stage};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use stream::driver::STREAM_WINDOW_SECTION;
use stream::{
    LogSource, Observation, ObservationLog, SimSource, SimSourceConfig, StreamConfig, StreamDriver,
    WindowSpec, WindowStatus,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("stream-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const T: usize = 4;

fn dataset() -> Dataset {
    Dataset::synthetic(
        TodPattern::Gaussian,
        &DatasetSpec {
            t: T,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.05,
            seed: 3,
        },
    )
    .unwrap()
}

fn stream_config(run_id: &str, windows: usize) -> StreamConfig {
    StreamConfig {
        run_id: run_id.into(),
        windows,
        spec: WindowSpec::new(T, 2, 1).unwrap(),
        ovs: OvsConfig::tiny().with_seed(17),
        keep_versions: 0,
        recovery: RecoveryPolicy::default(),
        incidents: simulator::IncidentSchedule::default(),
    }
}

fn sim_source(ds: &Dataset, spec: WindowSpec) -> SimSource {
    SimSource::new(
        ds.clone(),
        spec,
        SimSourceConfig {
            seed: 41,
            drift: 0.2,
            late_frac: 0.1,
            late_delay_frames: 1,
        },
    )
    .unwrap()
}

#[test]
fn windows_publish_versions_and_warm_converges_faster() {
    let tmp = TempDir::new("publish");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let ds = dataset();
    let cfg = stream_config("e2e", 3);
    let mut source = sim_source(&ds, cfg.spec);
    let mut driver = StreamDriver::new(&ds, cfg).unwrap();
    let report = driver.run(&store, &mut source).unwrap();

    assert_eq!(report.windows.len(), 3);
    assert_eq!(report.published(), 3);
    assert!(report.resumed_from.is_none());
    // Window 0 is the cold boot; later windows warm-start.
    assert!(!report.windows[0].warm);
    assert!(report.windows[1].warm && report.windows[2].warm);
    // One artifact version per published window, in order.
    for (i, w) in report.windows.iter().enumerate() {
        assert_eq!(w.status, WindowStatus::Published);
        assert_eq!(
            w.artifact.as_deref(),
            Some(format!("stream-e2e-v{:03}", i + 1).as_str())
        );
        assert!(w.fingerprint.is_some());
        assert!(w.masked_rmse.unwrap().is_finite());
        assert!(w.fit_steps > 0);
    }
    // Warm starts close the loss gap in fewer steps than the cold boot —
    // the step-count saving online re-estimation exists for.
    let warm = report.mean_steps_to_tol(true).unwrap();
    let cold = report.mean_steps_to_tol(false).unwrap();
    assert!(
        warm < cold,
        "warm ({warm}) should converge faster than cold ({cold})"
    );

    // Published artifacts carry window provenance and a recovered TOD.
    let snap = store
        .latest_good("stream-e2e", &RetryPolicy::default(), &SystemClock)
        .unwrap()
        .unwrap();
    let section = snap.artifact().f64s(STREAM_WINDOW_SECTION).unwrap();
    assert_eq!(section[0] as usize, 2); // newest published window index
    assert_eq!(section.len(), 7);
    assert!(recovered_tod(snap.artifact()).unwrap().is_some());
    // The provenance note names the window.
    let prov = snap.provenance().unwrap();
    assert!(prov.note.contains("stream window 2"));
    // Report serialises (the CLI --json path).
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("stream-e2e-v003"));
}

#[test]
fn warm_divergence_falls_back_to_cold_and_publishes() {
    let tmp = TempDir::new("diverge-fallback");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let ds = dataset();
    let cfg = stream_config("fallback", 2);
    let mut source = sim_source(&ds, cfg.spec);

    // Poison every fit step of window 1 — but only until the cold
    // fallback begins (its V2s stage is the tell: a warm start never runs
    // V2s). The warm attempt therefore diverges persistently while the
    // fallback runs clean.
    let cold_started = Arc::new(AtomicBool::new(false));
    let flag = cold_started.clone();
    let mut driver = StreamDriver::new(&ds, cfg).unwrap().with_tamper(Box::new(
        move |window, stage, _step, loss, _grad| {
            if window == 1 {
                if stage == Stage::V2s {
                    flag.store(true, Ordering::SeqCst);
                }
                if stage == Stage::Fit && !flag.load(Ordering::SeqCst) {
                    *loss = f64::NAN;
                }
            }
        },
    ));
    let report = driver.run(&store, &mut source).unwrap();

    assert_eq!(report.published(), 2);
    assert!(!report.windows[0].warm);
    // Window 1 published, but via the cold fallback.
    assert_eq!(report.windows[1].status, WindowStatus::Published);
    assert!(
        !report.windows[1].warm,
        "diverged warm start must fall back to cold"
    );
    assert!(cold_started.load(Ordering::SeqCst));
}

#[test]
fn persistent_divergence_fails_window_and_stream_recovers_cold() {
    let tmp = TempDir::new("diverge-fail");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let ds = dataset();
    let cfg = stream_config("poisoned", 3);
    let mut source = sim_source(&ds, cfg.spec);

    // Window 1 is unsalvageable: every fit step of every attempt is
    // poisoned, so warm and the cold fallback both exhaust the retry
    // budget.
    let mut driver = StreamDriver::new(&ds, cfg).unwrap().with_tamper(Box::new(
        |window, stage, _step, loss, _grad| {
            if window == 1 && stage == Stage::Fit {
                *loss = f64::NAN;
            }
        },
    ));
    let report = driver.run(&store, &mut source).unwrap();

    assert_eq!(report.windows[0].status, WindowStatus::Published);
    assert_eq!(report.windows[1].status, WindowStatus::Failed);
    assert!(report.windows[1].artifact.is_none());
    // The stream carries on: window 2 restarts cold (the poisoned model
    // was discarded) and publishes.
    assert_eq!(report.windows[2].status, WindowStatus::Published);
    assert!(!report.windows[2].warm);
    assert_eq!(report.published(), 2);
    // The family holds exactly the two good versions; the failed window
    // never published.
    let names = store.names().unwrap();
    let family: Vec<_> = names
        .iter()
        .filter(|n| n.starts_with("stream-poisoned-"))
        .collect();
    assert_eq!(family.len(), 2);
}

#[test]
fn empty_and_all_late_windows_do_not_publish() {
    let tmp = TempDir::new("empty");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let ds = dataset();
    let spec = WindowSpec::new(T, T, 0).unwrap();
    let cfg = StreamConfig {
        run_id: "gaps".into(),
        windows: 3,
        spec,
        ovs: OvsConfig::tiny().with_seed(17),
        keep_versions: 0,
        recovery: RecoveryPolicy::default(),
        incidents: simulator::IncidentSchedule::default(),
    };

    // A replay log with a hole: window 0 [0,4) observed, window 1 [4,8)
    // has zero on-time observations (its readings arrive after the
    // frontier already closed it), window 2 [8,12) observed.
    let mut log = ObservationLog::new();
    let speeds = &ds.observed_speed;
    for t in 0..T as u64 {
        for l in 0..ds.n_links() {
            log.append(Observation {
                link: roadnet::LinkId(l),
                interval: t,
                speed: speeds.get(roadnet::LinkId(l), t as usize % T),
            });
        }
    }
    // Frontier leaps to window 2, closing window 1 empty...
    for t in (2 * T as u64)..(3 * T as u64) {
        for l in 0..ds.n_links() {
            log.append(Observation {
                link: roadnet::LinkId(l),
                interval: t,
                speed: speeds.get(roadnet::LinkId(l), t as usize % T),
            });
        }
    }
    // ...and window 1's data finally arrives, entirely too late.
    for t in (T as u64)..(2 * T as u64) {
        log.append(Observation {
            link: roadnet::LinkId(0),
            interval: t,
            speed: 10.0,
        });
    }
    let mut source = LogSource::new(log, 5);
    let mut driver = StreamDriver::new(&ds, cfg).unwrap();
    let report = driver.run(&store, &mut source).unwrap();

    assert_eq!(report.windows.len(), 3);
    assert_eq!(report.windows[0].status, WindowStatus::Published);
    assert_eq!(report.windows[1].status, WindowStatus::Empty);
    assert!(report.windows[1].artifact.is_none());
    assert_eq!(report.windows[2].status, WindowStatus::Published);
    // The empty window carried the model: window 2 still warm-starts.
    assert!(report.windows[2].warm);
    assert_eq!(report.late_drops, T as u64);
    // Exactly two versions: the empty window published nothing.
    let names = store.names().unwrap();
    assert_eq!(
        names
            .iter()
            .filter(|n| n.starts_with("stream-gaps-"))
            .count(),
        2
    );
}

#[test]
fn gc_during_run_keeps_serving_view_and_newest_versions() {
    let tmp = TempDir::new("gc");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let ds = dataset();
    let mut cfg = stream_config("gc", 3);
    cfg.keep_versions = 1;
    let mut source = sim_source(&ds, cfg.spec);
    let mut driver = StreamDriver::new(&ds, cfg).unwrap();
    let report = driver.run(&store, &mut source).unwrap();
    assert_eq!(report.published(), 3);
    // gc after each publish kept only the newest version.
    let names = store.names().unwrap();
    let family: Vec<_> = names
        .iter()
        .filter(|n| n.starts_with("stream-gc-"))
        .collect();
    assert_eq!(family, ["stream-gc-v003"]);
}
