//! The stream → serve handoff: a live `cityod-serve` instance pointed at
//! a stream family hot-swaps to every window the driver publishes, with
//! concurrent readers seeing zero 5xx, and a corrupt artifact landing on
//! disk never displacing the serving view.

use checkpoint::store::ArtifactStore;
use checkpoint::SnapshotSource;
use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use fault::storage::corrupt_artifact_bytes;
use fault::StorageFaults;
use ovs_core::config::OvsConfig;
use ovs_core::trainer::RecoveryPolicy;
use serve::{ServeOptions, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stream::{SimSource, SimSourceConfig, StreamConfig, StreamDriver, WindowSpec};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("stream-handoff-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const T: usize = 4;
const FAMILY: &str = "stream-handoff";

fn dataset() -> Dataset {
    Dataset::synthetic(
        TodPattern::Gaussian,
        &DatasetSpec {
            t: T,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.05,
            seed: 3,
        },
    )
    .unwrap()
}

fn config(windows: usize) -> StreamConfig {
    StreamConfig {
        run_id: "handoff".into(),
        windows,
        spec: WindowSpec::new(T, 2, 1).unwrap(),
        ovs: OvsConfig::tiny().with_seed(17),
        keep_versions: 0,
        recovery: RecoveryPolicy::default(),
        incidents: simulator::IncidentSchedule::default(),
    }
}

/// Publishes windows up to `windows` into `store` (resuming past what is
/// already there), replaying the deterministic simulator source.
fn publish_up_to(store: &ArtifactStore, ds: &Dataset, windows: usize) {
    let mut src = SimSource::new(
        ds.clone(),
        config(windows).spec,
        SimSourceConfig {
            seed: 41,
            drift: 0.2,
            late_frac: 0.1,
            late_delay_frames: 1,
        },
    )
    .unwrap();
    let mut driver = StreamDriver::new(ds, config(windows)).unwrap();
    driver.run(store, &mut src).unwrap();
}

/// One raw HTTP exchange; returns (status, headers-as-lines, body).
fn fetch(addr: &str, path: &str) -> (u16, Vec<String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            }
        }
        headers.push(trimmed.to_string());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, headers, body)
}

fn header_value<'a>(headers: &'a [String], name: &str) -> Option<&'a str> {
    headers.iter().find_map(|h| {
        let (n, v) = h.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

fn body_json(body: &[u8]) -> serde_json::Value {
    serde_json::from_str(std::str::from_utf8(body).unwrap()).unwrap()
}

/// Polls `/version` until it reports `artifact`, asserting no 5xx on the
/// way; returns the ETag it settled on.
fn await_artifact(addr: &str, artifact: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, headers, body) = fetch(addr, "/version");
        assert!(status < 500, "5xx while awaiting {artifact}: {status}");
        if status == 200 && body_json(&body)["artifact"].as_str() == Some(artifact) {
            return header_value(&headers, "etag").unwrap().to_string();
        }
        assert!(
            Instant::now() < deadline,
            "server never swapped to {artifact}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn serving_view_follows_the_stream_across_windows() {
    let tmp = TempDir::new("follow");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    let ds = dataset();

    // Window 0 trains before the server boots: `Server::start` fails fast
    // on an empty family.
    publish_up_to(&store, &ds, 1);
    let server = Server::start(
        ArtifactStore::open(tmp.path()).unwrap(),
        SnapshotSource::Family(FAMILY.into()),
        ds.clone(),
        &ServeOptions {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            poll_ms: 20,
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Concurrent readers hammer the read side for the whole handoff; any
    // 5xx or torn response fails the test at the end.
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let reader = {
        let addr = addr.clone();
        let stop = stop.clone();
        let reads = reads.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                for path in ["/version", "/kpis", "/healthz"] {
                    let (status, _, _) = fetch(&addr, path);
                    assert!(status < 500, "reader saw {status} on {path}");
                    reads.fetch_add(1, Ordering::SeqCst);
                }
            }
        })
    };

    // Windows 1 and 2 train while the server serves window 0: readers
    // hot-swap to window N+1 while window N+2 is still training.
    let mut etags = vec![await_artifact(&addr, &format!("{FAMILY}-v001"))];
    for k in 2..=3 {
        publish_up_to(&store, &ds, k);
        etags.push(await_artifact(&addr, &format!("{FAMILY}-v{k:03}")));
    }
    assert_eq!(etags.len(), 3);
    for (i, a) in etags.iter().enumerate() {
        for b in etags.iter().skip(i + 1) {
            assert_ne!(a, b, "each window must produce a distinct ETag");
        }
    }

    // A corrupted artifact lands as the newest version: the watcher
    // quarantines it and the window-2 view keeps serving.
    let bad = format!("{FAMILY}-v004");
    let mut bytes = std::fs::read(store.artifact_path(&format!("{FAMILY}-v003"))).unwrap();
    assert!(corrupt_artifact_bytes(
        &mut bytes,
        &StorageFaults {
            bit_flips: 8,
            truncate_bytes: 0,
        },
        42,
    ));
    std::fs::write(store.artifact_path(&bad), &bytes).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.artifact_path(&bad).exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        !store.artifact_path(&bad).exists(),
        "corrupt artifact was never quarantined"
    );
    let (status, headers, body) = fetch(&addr, "/version");
    assert_eq!(status, 200);
    assert_eq!(
        body_json(&body)["artifact"].as_str(),
        Some("stream-handoff-v003")
    );
    assert_eq!(header_value(&headers, "etag"), Some(etags[2].as_str()));

    stop.store(true, Ordering::SeqCst);
    reader.join().unwrap();
    assert!(
        reads.load(Ordering::SeqCst) > 0,
        "reader thread never completed a request"
    );
    server.shutdown();
}
