//! The tentpole acceptance test: killing the stream at any window
//! boundary and restarting must be invisible in the output.
//!
//! One uninterrupted N-window run and a run killed after k windows then
//! restarted (fresh driver, fresh source, same seeds) must produce
//! bit-identical artifact families: the same version names, the same
//! content fingerprints (the serving layer's ETags), and the same final
//! model weights. CI runs this binary under `CITYOD_THREADS=1` and
//! `CITYOD_THREADS=4` to prove the equivalence is also thread-count
//! independent.

use checkpoint::store::ArtifactStore;
use checkpoint::{RetryPolicy, SystemClock};
use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use neural::Matrix;
use ovs_core::artifact::model_weights;
use ovs_core::config::OvsConfig;
use ovs_core::trainer::RecoveryPolicy;
use std::path::{Path, PathBuf};
use stream::{SimSource, SimSourceConfig, StreamConfig, StreamDriver, WindowSpec};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("stream-restart-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const T: usize = 4;
const WINDOWS: usize = 4;

fn dataset() -> Dataset {
    Dataset::synthetic(
        TodPattern::Gaussian,
        &DatasetSpec {
            t: T,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.05,
            seed: 3,
        },
    )
    .unwrap()
}

fn config(windows: usize) -> StreamConfig {
    StreamConfig {
        run_id: "restart".into(),
        windows,
        spec: WindowSpec::new(T, 2, 1).unwrap(),
        ovs: OvsConfig::tiny().with_seed(17),
        keep_versions: 0,
        recovery: RecoveryPolicy::default(),
        incidents: simulator::IncidentSchedule::default(),
    }
}

fn source(ds: &Dataset) -> SimSource {
    SimSource::new(
        ds.clone(),
        config(WINDOWS).spec,
        SimSourceConfig {
            seed: 41,
            drift: 0.2,
            late_frac: 0.1,
            late_delay_frames: 1,
        },
    )
    .unwrap()
}

/// The family's full observable state: ordered `(version name,
/// fingerprint)` pairs plus the final model weights recovered from the
/// newest good artifact.
fn family_state(store: &ArtifactStore) -> (Vec<(String, String)>, Vec<Matrix>) {
    let mut versions: Vec<String> = store
        .names()
        .unwrap()
        .into_iter()
        .filter(|n| n.starts_with("stream-restart-"))
        .collect();
    versions.sort();
    let fingerprints = versions
        .iter()
        .map(|name| {
            let snap = store.snapshot(name).unwrap();
            (name.clone(), snap.fingerprint().to_string())
        })
        .collect();
    let latest = store
        .latest_good("stream-restart", &RetryPolicy::default(), &SystemClock)
        .unwrap()
        .unwrap();
    let weights = model_weights(latest.artifact(), &config(WINDOWS).ovs).unwrap();
    (fingerprints, weights)
}

/// One uninterrupted run over `WINDOWS` windows.
fn run_straight(store: &ArtifactStore, ds: &Dataset) {
    let mut src = source(ds);
    let mut driver = StreamDriver::new(ds, config(WINDOWS)).unwrap();
    let report = driver.run(store, &mut src).unwrap();
    assert_eq!(report.published(), WINDOWS);
}

/// A run killed after `kill_after` windows, then restarted from the
/// published artifacts: a fresh driver replays the same source from the
/// beginning, skips what is already published, and finishes the rest.
fn run_with_restart(store: &ArtifactStore, ds: &Dataset, kill_after: usize) {
    {
        let mut src = source(ds);
        let mut driver = StreamDriver::new(ds, config(kill_after)).unwrap();
        let report = driver.run(store, &mut src).unwrap();
        assert_eq!(report.published(), kill_after);
    }
    let mut src = source(ds);
    let mut driver = StreamDriver::new(ds, config(WINDOWS)).unwrap();
    let report = driver.run(store, &mut src).unwrap();
    assert_eq!(report.resumed_from, Some(kill_after - 1));
    assert_eq!(report.windows.len(), WINDOWS);
    assert_eq!(
        report.published() + kill_after,
        WINDOWS,
        "restart must publish exactly the missing windows"
    );
}

#[test]
fn restart_at_any_window_boundary_is_bit_identical() {
    // Honour CITYOD_THREADS when CI pins it; auto otherwise.
    let threads = roadnet::parallel::init_global(None);

    let ds = dataset();
    let tmp = TempDir::new("straight");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    run_straight(&store, &ds);
    let (reference_versions, reference_weights) = family_state(&store);
    assert_eq!(reference_versions.len(), WINDOWS);

    for kill_after in 1..WINDOWS {
        let tmp = TempDir::new(&format!("kill{kill_after}"));
        let store = ArtifactStore::open(tmp.path()).unwrap();
        run_with_restart(&store, &ds, kill_after);
        let (versions, weights) = family_state(&store);
        assert_eq!(
            versions, reference_versions,
            "threads={threads}: version names + fingerprints must match after \
             a restart at window boundary {kill_after}"
        );
        assert_eq!(
            weights, reference_weights,
            "threads={threads}: final model weights must be bit-identical after \
             a restart at window boundary {kill_after}"
        );
    }
}

#[test]
fn rerun_of_complete_family_publishes_nothing_new() {
    roadnet::parallel::init_global(None);
    let ds = dataset();
    let tmp = TempDir::new("rerun");
    let store = ArtifactStore::open(tmp.path()).unwrap();
    run_straight(&store, &ds);
    let (before, _) = family_state(&store);

    // Running the same config again replays the source but skips every
    // window: the family is untouched.
    let mut src = source(&ds);
    let mut driver = StreamDriver::new(&ds, config(WINDOWS)).unwrap();
    let report = driver.run(&store, &mut src).unwrap();
    assert_eq!(report.published(), 0);
    assert_eq!(report.resumed_from, Some(WINDOWS - 1));
    let (after, _) = family_state(&store);
    assert_eq!(before, after);
}
