//! End-to-end checks: every baseline recovers *something* sane on a tiny
//! synthetic dataset, and the better-suited methods beat trivial guesses.

use baselines::all_baselines;
use datagen::{Dataset, TodPattern};
use ovs_core::estimator::TrainTriple;
use ovs_core::{EstimatorInput, TodEstimator};
use roadnet::TodTensor;

fn tiny_dataset() -> Dataset {
    let spec = datagen::dataset::DatasetSpec {
        t: 4,
        interval_s: 120.0,
        train_samples: 5,
        demand_scale: 0.3,
        seed: 11,
    };
    Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap()
}

fn input<'a>(ds: &'a Dataset, tr: &'a [TrainTriple]) -> EstimatorInput<'a> {
    EstimatorInput::builder(&ds.net, &ds.ods)
        .interval_s(ds.sim_config.interval_s)
        .sim_seed(ds.sim_config.seed)
        .train(tr)
        .observed_speed(&ds.observed_speed)
        .build()
}

#[test]
fn every_baseline_produces_valid_tod() {
    let ds = tiny_dataset();
    let inp = input(&ds, &ds.train);
    for mut b in all_baselines(3) {
        let tod = b
            .estimate(&inp)
            .unwrap_or_else(|e| panic!("{} failed: {e}", b.name()));
        assert_eq!(tod.rows(), ds.n_od(), "{}", b.name());
        assert_eq!(tod.num_intervals(), 4, "{}", b.name());
        assert!(tod.is_finite(), "{}", b.name());
        assert!(tod.is_non_negative(), "{}", b.name());
        assert!(
            tod.total() > 0.0,
            "{} must not predict zero demand",
            b.name()
        );
    }
}

#[test]
fn learned_baselines_beat_zero_guess() {
    let ds = tiny_dataset();
    let inp = input(&ds, &ds.train);
    let zero = TodTensor::zeros(ds.n_od(), 4);
    let zero_err = ds.groundtruth_tod.rmse(&zero).unwrap();
    // The regression baselines (NN, LSTM, EM, GLS) should comfortably
    // beat predicting nothing.
    for mut b in all_baselines(3) {
        let name = b.name().to_string();
        if name == "Gravity" || name == "Genetic" {
            continue; // structural methods; checked elsewhere
        }
        let tod = b.estimate(&inp).unwrap();
        let err = ds.groundtruth_tod.rmse(&tod).unwrap();
        assert!(
            err < zero_err,
            "{name}: RMSE {err} should beat the zero guess {zero_err}"
        );
    }
}

#[test]
fn baselines_without_corpus_fail_cleanly() {
    let ds = tiny_dataset();
    let inp = input(&ds, &[]);
    for mut b in all_baselines(0) {
        let name = b.name().to_string();
        if name == "Gravity" || name == "Genetic" {
            continue; // these tolerate an empty corpus
        }
        assert!(b.estimate(&inp).is_err(), "{name} must reject empty corpus");
    }
}

#[test]
fn gravity_reflects_population_structure() {
    // On a city dataset with populations set, Gravity's recovered TOD must
    // correlate with p_o * p_d / d^2 across ODs (it is the model).
    let spec = datagen::dataset::DatasetSpec {
        t: 3,
        interval_s: 120.0,
        train_samples: 3,
        demand_scale: 0.2,
        seed: 4,
    };
    let ds = Dataset::city(roadnet::presets::state_college(), &spec).unwrap();
    let inp = input(&ds, &ds.train);
    let mut grav = baselines::GravityEstimator::new();
    let tod = grav.estimate(&inp).unwrap();
    // Constant over time.
    for (id, _) in ds.ods.iter() {
        let row = tod.row(id);
        for w in row.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12, "gravity TOD is static in t");
        }
    }
    // Row totals ordered like the gravity weights: spot-check extremes.
    let totals: Vec<f64> = ds.ods.iter().map(|(id, _)| tod.row_total(id)).collect();
    let max = totals.iter().cloned().fold(f64::MIN, f64::max);
    let min = totals.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max > min, "gravity must differentiate OD pairs");
}

#[test]
fn genetic_final_candidate_fits_speed_well() {
    // The GA's winner must fit the observed speed better than an average
    // corpus tensor does.
    let ds = tiny_dataset();
    let inp = input(&ds, &ds.train);
    let mut gen = baselines::GeneticEstimator::new(3).with_budget(8, 5);
    let tod = gen.estimate(&inp).unwrap();
    let fit = |t: &TodTensor| {
        datagen::dataset::simulate(&ds.net, &ds.ods, &ds.sim_config, t)
            .unwrap()
            .speed
            .rmse(&ds.observed_speed)
            .unwrap()
    };
    let winner = fit(&tod);
    let corpus_avg: f64 = ds.train.iter().map(|s| fit(&s.tod)).sum::<f64>() / ds.train.len() as f64;
    assert!(
        winner <= corpus_avg + 1e-9,
        "GA winner {winner} must beat the corpus average {corpus_avg}"
    );
}

#[test]
fn nn_and_lstm_fit_training_distribution() {
    // Applied to a *training* sample's speed, the learned inverses should
    // recover that sample's TOD far better than the zero guess.
    let ds = tiny_dataset();
    let sample = &ds.train[0];
    let mut inp = input(&ds, &ds.train);
    inp.observed_speed = &sample.speed;
    for name in ["NN", "LSTM"] {
        let mut m: Box<dyn ovs_core::TodEstimator> = if name == "NN" {
            Box::new(baselines::NnEstimator::new(3))
        } else {
            Box::new(baselines::LstmEstimator::new(3))
        };
        let tod = m.estimate(&inp).unwrap();
        let err = sample.tod.rmse(&tod).unwrap();
        let zero = sample
            .tod
            .rmse(&TodTensor::zeros(ds.n_od(), ds.n_intervals()))
            .unwrap();
        assert!(
            err < zero * 0.8,
            "{name} on in-distribution data: {err} vs zero {zero}"
        );
    }
}

#[test]
fn em_recovers_scaled_training_scenario() {
    // EM's linear model should track demand level: feeding the speed of a
    // heavy corpus sample yields a heavier TOD estimate than feeding the
    // speed of a light one.
    let ds = tiny_dataset();
    let (mut light_idx, mut heavy_idx) = (0usize, 0usize);
    for (k, s) in ds.train.iter().enumerate() {
        if s.tod.total() < ds.train[light_idx].tod.total() {
            light_idx = k;
        }
        if s.tod.total() > ds.train[heavy_idx].tod.total() {
            heavy_idx = k;
        }
    }
    let mut est_light = baselines::EmEstimator::new();
    let mut inp_l = input(&ds, &ds.train);
    inp_l.observed_speed = &ds.train[light_idx].speed;
    let tod_l = est_light.estimate(&inp_l).unwrap();

    let mut est_heavy = baselines::EmEstimator::new();
    let mut inp_h = input(&ds, &ds.train);
    inp_h.observed_speed = &ds.train[heavy_idx].speed;
    let tod_h = est_heavy.estimate(&inp_h).unwrap();

    assert!(
        tod_h.total() > tod_l.total(),
        "EM: heavy scenario {} must out-total light {}",
        tod_h.total(),
        tod_l.total()
    );
}
