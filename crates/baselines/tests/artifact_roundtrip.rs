//! Save/load round trips for the trainable baselines: a reloaded NN or
//! LSTM must predict bit-identically to the net that was saved, and a
//! second save must be byte-identical to the first.

use baselines::{LstmEstimator, NnEstimator, TrainedLstm, TrainedNn};
use checkpoint::format::Artifact;
use checkpoint::CheckpointError;
use datagen::{Dataset, TodPattern};
use ovs_core::EstimatorInput;

fn tiny_dataset() -> Dataset {
    let spec = datagen::dataset::DatasetSpec {
        t: 4,
        interval_s: 120.0,
        train_samples: 4,
        demand_scale: 0.25,
        seed: 13,
    };
    Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap()
}

fn input(ds: &Dataset) -> EstimatorInput<'_> {
    EstimatorInput::builder(&ds.net, &ds.ods)
        .interval_s(ds.sim_config.interval_s)
        .sim_seed(ds.sim_config.seed)
        .train(&ds.train)
        .observed_speed(&ds.observed_speed)
        .build()
}

#[test]
fn trained_nn_round_trips_bit_exactly() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let mut trained = NnEstimator::new(5).fit(&inp).unwrap();
    let direct = trained.predict(&ds.observed_speed);

    let bytes = trained.to_artifact().to_bytes();
    let mut reloaded = TrainedNn::from_artifact(&Artifact::from_bytes(&bytes).unwrap()).unwrap();
    let from_disk = reloaded.predict(&ds.observed_speed);

    assert_eq!(direct.as_slice(), from_disk.as_slice());
    // save -> load -> save is byte-identical
    assert_eq!(reloaded.to_artifact().to_bytes(), bytes);
}

#[test]
fn trained_lstm_round_trips_bit_exactly() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let mut trained = LstmEstimator::new(5).fit(&inp).unwrap();
    let direct = trained.predict(&ds.observed_speed);

    let bytes = trained.to_artifact().to_bytes();
    let mut reloaded = TrainedLstm::from_artifact(&Artifact::from_bytes(&bytes).unwrap()).unwrap();
    let from_disk = reloaded.predict(&ds.observed_speed);

    assert_eq!(direct.as_slice(), from_disk.as_slice());
    assert_eq!(reloaded.to_artifact().to_bytes(), bytes);
}

#[test]
fn baseline_kinds_are_not_interchangeable() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let nn_artifact = Artifact::from_bytes(
        &NnEstimator::new(1)
            .fit(&inp)
            .unwrap()
            .to_artifact()
            .to_bytes(),
    )
    .unwrap();
    let lstm_artifact = Artifact::from_bytes(
        &LstmEstimator::new(1)
            .fit(&inp)
            .unwrap()
            .to_artifact()
            .to_bytes(),
    )
    .unwrap();
    assert!(matches!(
        TrainedNn::from_artifact(&lstm_artifact),
        Err(CheckpointError::WrongKind { .. })
    ));
    assert!(matches!(
        TrainedLstm::from_artifact(&nn_artifact),
        Err(CheckpointError::WrongKind { .. })
    ));
}
