//! The Genetic baseline (§V-F).
//!
//! "Genetic algorithm searches TOD trip counts that match speed
//! observation best. This method iteratively picks the best several
//! candidates and mutate until convergence."
//!
//! Candidates are full TOD tensors; fitness is the RMSE between the
//! observed speed tensor and the speed the *simulator* produces for the
//! candidate (the paper evaluates candidates in its simulator too — this
//! is what makes the method accurate-but-slow). Standard generational GA:
//! elitism, uniform crossover, Gaussian mutation.

use neural::rng::Rng64;
use ovs_core::{EstimatorInput, TodEstimator};
use roadnet::{Result, TodTensor};
use simulator::{SimConfig, Simulation};

/// The Genetic estimator.
#[derive(Debug)]
pub struct GeneticEstimator {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Survivors kept per generation (elitism).
    pub elite: usize,
    /// Std-dev of Gaussian mutation, relative to the demand scale.
    pub mutation_sigma: f64,
    seed: u64,
}

impl GeneticEstimator {
    /// Creates the estimator with a budget small enough for the
    /// experiment binaries (the paper's GA is equally budget-bound —
    /// it is the slowest baseline there as well).
    pub fn new(seed: u64) -> Self {
        Self {
            population: 10,
            generations: 8,
            elite: 3,
            mutation_sigma: 0.25,
            seed,
        }
    }

    /// Overrides the search budget.
    pub fn with_budget(mut self, population: usize, generations: usize) -> Self {
        self.population = population.max(2);
        self.generations = generations;
        self
    }
}

impl TodEstimator for GeneticEstimator {
    fn name(&self) -> &str {
        "Genetic"
    }

    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor> {
        ovs_core::estimator::validate_input(input)?;
        let n = input.n_od();
        let t = input.n_intervals();
        let mut rng = Rng64::new(self.seed);

        // Demand scale from the corpus: mean cell value across samples.
        let cells: f64 = input
            .train
            .iter()
            .map(|s| s.tod.total())
            .sum::<f64>()
            .max(1.0);
        let mean_cell = cells / (input.train.len().max(1) * n * t) as f64;

        let cfg = SimConfig::default()
            .with_intervals(t)
            .with_interval_s(input.interval_s)
            .with_seed(input.sim_seed);
        let mut sim = Simulation::new(input.net, input.ods, cfg)?;

        let fitness = |tod: &TodTensor, sim: &mut Simulation<'_>| -> Result<f64> {
            let out = sim.run(tod)?;
            out.speed.rmse(input.observed_speed)
        };

        // Seed population: corpus samples plus random perturbations.
        let mut pop: Vec<TodTensor> = Vec::with_capacity(self.population);
        for k in 0..self.population {
            let mut cand = if !input.train.is_empty() {
                input.train[k % input.train.len()].tod.clone()
            } else {
                TodTensor::filled(n, t, mean_cell)
            };
            if k >= input.train.len() {
                cand.map_inplace(|v| (v + rng.normal_with(0.0, mean_cell * 0.5)).max(0.0));
            }
            pop.push(cand);
        }

        let mut scored: Vec<(f64, TodTensor)> = Vec::with_capacity(pop.len());
        for cand in pop {
            let f = fitness(&cand, &mut sim)?;
            scored.push((f, cand));
        }
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        for _gen in 0..self.generations {
            let elite = self.elite.min(scored.len());
            let mut next: Vec<TodTensor> =
                scored.iter().take(elite).map(|(_, c)| c.clone()).collect();
            while next.len() < self.population {
                // Uniform crossover of two elite parents + mutation.
                let a = &scored[rng.index(elite)].1;
                let b = &scored[rng.index(elite)].1;
                let mut child = TodTensor::zeros(n, t);
                for (k, c) in child.as_mut_slice().iter_mut().enumerate() {
                    let gene = if rng.uniform() < 0.5 {
                        a.as_slice()[k]
                    } else {
                        b.as_slice()[k]
                    };
                    let noise = rng.normal_with(0.0, self.mutation_sigma * mean_cell);
                    *c = (gene + noise).max(0.0);
                }
                next.push(child);
            }
            scored = next
                .into_iter()
                .map(|cand| -> Result<(f64, TodTensor)> {
                    let f = fitness(&cand, &mut sim)?;
                    Ok((f, cand))
                })
                .collect::<Result<Vec<_>>>()?;
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        }

        Ok(scored.remove(0).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_and_budget_builder() {
        let g = GeneticEstimator::new(0).with_budget(1, 3);
        assert_eq!(g.name(), "Genetic");
        assert_eq!(g.population, 2, "population is clamped to >= 2");
        assert_eq!(g.generations, 3);
    }
}
