//! The EM baseline (§V-F).
//!
//! "This method will iteratively update the distribution of TOD and the
//! distribution of the influence from TOD to corresponding road segments
//! speed, and maximize the probability of the observed speed data."
//!
//! We implement the classic Gaussian formulation (Spiess 1987; Li 2005)
//! adapted to speed observations. The observation model is linear in the
//! *speed deficit* `d = v_free - v`:
//!
//! ```text
//! d_t = B g_t + eps,   eps ~ N(0, sigma^2 I),   g_t ~ N(mu, tau^2 I)
//! ```
//!
//! * **M-step (influence)**: `B` is fitted by ridge regression on the
//!   training corpus (per-interval snapshots).
//! * **E-step (TOD)**: the posterior mean of `g_t` given the observed
//!   deficit is the ridge solution
//!   `(B^T B + (sigma^2 / tau^2) I)^{-1} B^T d_t`, clamped to be
//!   non-negative.
//! * Iteration: `mu`, `tau`, `sigma` are re-estimated from the current
//!   posterior means and residuals, sharpening the prior — a handful of
//!   rounds suffices.

use crate::linalg::{ridge, solve};
use neural::Matrix;
use ovs_core::estimator::{link_to_matrix, tod_to_matrix};
use ovs_core::{EstimatorInput, TodEstimator};
use roadnet::{OdPairId, Result, RoadnetError, TodTensor};

/// The EM estimator.
#[derive(Debug)]
pub struct EmEstimator {
    /// Ridge regularisation when fitting the influence matrix.
    pub lambda_b: f64,
    /// EM rounds.
    pub rounds: usize,
}

impl Default for EmEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl EmEstimator {
    /// Creates the estimator.
    pub fn new() -> Self {
        Self {
            lambda_b: 1e-2,
            rounds: 5,
        }
    }
}

impl TodEstimator for EmEstimator {
    fn name(&self) -> &str {
        "EM"
    }

    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor> {
        ovs_core::estimator::validate_input(input)?;
        if input.train.is_empty() {
            return Err(RoadnetError::InvalidSpec(
                "EM requires a training corpus".into(),
            ));
        }
        let n = input.n_od();
        let m = input.n_links();
        let t = input.n_intervals();

        // Free-flow speeds per link: best observed speed in the corpus
        // (speed at zero volume equals the limit).
        let mut v_free = vec![0.0f64; m];
        for s in input.train {
            for (j, vf) in v_free.iter_mut().enumerate() {
                for &v in &link_to_matrix(&s.speed).row(j)[..t] {
                    *vf = vf.max(v);
                }
            }
        }

        // Snapshots: g rows (samples*t, n), deficit rows (samples*t, m).
        let rows = input.train.len() * t;
        let mut g_snap = Matrix::zeros(rows, n);
        let mut d_snap = Matrix::zeros(rows, m);
        for (s, sample) in input.train.iter().enumerate() {
            let gm = tod_to_matrix(&sample.tod);
            let vm = link_to_matrix(&sample.speed);
            for ti in 0..t {
                let r = s * t + ti;
                for i in 0..n {
                    g_snap.set(r, i, gm.get(i, ti));
                }
                for (j, &vf) in v_free.iter().enumerate() {
                    d_snap.set(r, j, (vf - vm.get(j, ti)).max(0.0));
                }
            }
        }

        // Influence matrix B: deficit = g @ B, B is (n, m).
        let b = ridge(&g_snap, &d_snap, self.lambda_b)
            .ok_or_else(|| RoadnetError::InvalidSpec("influence-matrix solve failed".into()))?;

        // Observed deficits per interval.
        let v_obs = link_to_matrix(input.observed_speed); // (m, t)
        let mut d_obs = Matrix::zeros(t, m);
        for ti in 0..t {
            for (j, &vf) in v_free.iter().enumerate() {
                d_obs.set(ti, j, (vf - v_obs.get(j, ti)).max(0.0));
            }
        }

        // Initial prior from the corpus.
        let mut mu = g_snap.mean();
        let mut ratio: f64 = 1.0; // sigma^2 / tau^2
        let mut g_est = Matrix::filled(t, n, mu);

        let btb = b.matmul_a_bt(&b); // (n, n) = B B^T ... careful below
        for _ in 0..self.rounds {
            // E-step: posterior mean per interval:
            // g = (B B^T + ratio I)^{-1} (B d + ratio * mu)
            let mut lhs = btb.clone();
            for i in 0..n {
                let v = lhs.get(i, i);
                lhs.set(i, i, v + ratio.max(1e-6));
            }
            for ti in 0..t {
                // rhs_i = sum_j B[i, j] * d_obs[ti, j] + ratio * mu
                let rhs: Vec<f64> = (0..n)
                    .map(|i| {
                        let mut acc = 0.0;
                        for j in 0..m {
                            acc += b.get(i, j) * d_obs.get(ti, j);
                        }
                        acc + ratio * mu
                    })
                    .collect();
                if let Some(sol) = solve(&lhs, &rhs) {
                    for (i, v) in sol.into_iter().enumerate() {
                        g_est.set(ti, i, v.max(0.0));
                    }
                }
            }

            // M-step: update prior mean and noise ratio from residuals.
            mu = g_est.mean().max(0.0);
            let pred_d = g_est.matmul(&b); // (t, m)
            let mut res_sq = 0.0;
            for (p, o) in pred_d.as_slice().iter().zip(d_obs.as_slice()) {
                res_sq += (p - o) * (p - o);
            }
            let sigma2 = (res_sq / (t * m) as f64).max(1e-6);
            let mut var_g = 0.0;
            for &g in g_est.as_slice() {
                var_g += (g - mu) * (g - mu);
            }
            let tau2 = (var_g / (t * n) as f64).max(1e-6);
            ratio = sigma2 / tau2;
        }

        // g_est is (t, n); output (n, t).
        let mut tod = TodTensor::zeros(n, t);
        for ti in 0..t {
            for i in 0..n {
                tod.set(OdPairId(i), ti, g_est.get(ti, i));
            }
        }
        Ok(tod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_matches() {
        assert_eq!(EmEstimator::new().name(), "EM");
    }
}
