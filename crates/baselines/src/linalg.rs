//! Dense linear algebra for the statistical baselines.
//!
//! GLS and EM need regularised least squares. We implement Gaussian
//! elimination with partial pivoting and ridge regression through the
//! normal equations — the problem sizes here (N_od up to ~100) make a
//! dense O(n^3) solve entirely adequate, and keeping it in-crate avoids an
//! external LAPACK dependency (see DESIGN.md's dependency policy).

use neural::Matrix;

/// Solves `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting. Returns `None` when `A` is (numerically) singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Augmented working copy.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row = a.row(r).to_vec();
            row.push(b[r]);
            row
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        let pivot_val = m[col][col];
        for r in (col + 1)..n {
            let factor = m[r][col] / pivot_val;
            if factor == 0.0 {
                continue;
            }
            // Two rows of `m` are read and written in lockstep; an index
            // loop sidesteps the aliasing dance.
            #[allow(clippy::needless_range_loop)]
            for c in col..=n {
                let sub = factor * m[col][c];
                m[r][c] -= sub;
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = m[r][n];
        for c in (r + 1)..n {
            acc -= m[r][c] * x[c];
        }
        x[r] = acc / m[r][r];
    }
    Some(x)
}

/// Ridge regression: finds `W` (`(p, q)`) minimising
/// `||X W - Y||^2 + lambda ||W||^2` via the normal equations
/// `(X^T X + lambda I) W = X^T Y`. `X` is `(n, p)`, `Y` is `(n, q)`.
pub fn ridge(x: &Matrix, y: &Matrix, lambda: f64) -> Option<Matrix> {
    assert_eq!(x.rows(), y.rows(), "sample counts must match");
    let p = x.cols();
    let mut xtx = x.matmul_at_b(x);
    for i in 0..p {
        let v = xtx.get(i, i);
        xtx.set(i, i, v + lambda);
    }
    let xty = x.matmul_at_b(y); // (p, q)
    let mut w = Matrix::zeros(p, y.cols());
    // Solve one column at a time.
    for c in 0..y.cols() {
        let rhs: Vec<f64> = (0..p).map(|r| xty.get(r, c)).collect();
        let col = solve(&xtx, &rhs)?;
        for (r, v) in col.into_iter().enumerate() {
            w.set(r, c, v);
        }
    }
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let x = solve(&a, &[3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve(&a, &[2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn ridge_recovers_exact_linear_map() {
        // y = x @ w_true with more samples than features.
        let x = Matrix::from_fn(10, 3, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let w_true = Matrix::from_vec(3, 2, vec![1.0, -2.0, 0.5, 3.0, 2.0, -1.0]).unwrap();
        let y = x.matmul(&w_true);
        let w = ridge(&x, &y, 1e-9).unwrap();
        for (a, b) in w.as_slice().iter().zip(w_true.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn ridge_shrinks_with_lambda() {
        let x = Matrix::from_fn(8, 2, |r, c| (r + c) as f64);
        let y = x.matmul(&Matrix::from_vec(2, 1, vec![2.0, -1.0]).unwrap());
        let w_small = ridge(&x, &y, 1e-9).unwrap();
        let w_big = ridge(&x, &y, 1e6).unwrap();
        assert!(w_big.norm() < w_small.norm());
    }

    #[test]
    fn ridge_handles_underdetermined_via_regularisation() {
        // Fewer samples than features: plain normal equations are
        // singular, ridge is not.
        let x = Matrix::from_fn(2, 5, |r, c| (r * 5 + c) as f64);
        let y = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        assert!(ridge(&x, &y, 1e-3).is_some());
    }
}
