//! The Gravity baseline (§V-F).
//!
//! "The total trip number from region i to j is calculated as
//! `g_ij = k p_i p_j / d_ij^2` ... k is tuned by grid search, and kept
//! same across time intervals."
//!
//! The gravity shape comes from the network's (synthetic) census
//! populations and region centroid distances. The scale `k` is grid
//! searched against the speed observation: from the training corpus we fit
//! a tiny monotone surrogate mapping *total demand per interval* to
//! *city-wide mean speed*, then pick the `k` whose implied demand explains
//! the observed mean speed best. As the paper notes, the method cannot
//! express temporal variation — the recovered TOD is constant over `t`.

use ovs_core::{EstimatorInput, TodEstimator};
use roadnet::{OdPairId, Result, RoadnetError, TodTensor};

/// The Gravity estimator.
#[derive(Debug, Default)]
pub struct GravityEstimator {
    /// Grid-search resolution (candidates per decade).
    pub grid_points: usize,
    /// Apply doubly-constrained IPF balancing against census production /
    /// attraction marginals when census totals are available (the
    /// doubly-constrained gravity model of Jin et al. the paper cites).
    pub doubly_constrained: bool,
}

impl GravityEstimator {
    /// Creates the estimator with the default grid.
    pub fn new() -> Self {
        Self {
            grid_points: 40,
            doubly_constrained: false,
        }
    }

    /// Enables IPF balancing against census marginals.
    pub fn doubly_constrained() -> Self {
        Self {
            grid_points: 40,
            doubly_constrained: true,
        }
    }

    /// The unscaled gravity weights `p_o p_d / d^2` per OD pair.
    fn gravity_weights(input: &EstimatorInput<'_>) -> Result<Vec<f64>> {
        let net = input.net;
        let mut weights = Vec::with_capacity(input.ods.len());
        for (_, pair) in input.ods.iter() {
            let ro = net.region(pair.origin)?;
            let rd = net.region(pair.destination)?;
            let d = match (ro.centroid(net), rd.centroid(net)) {
                (Some(a), Some(b)) => a.distance(&b).max(100.0),
                _ => {
                    return Err(RoadnetError::InvalidSpec(format!(
                        "region {} or {} has no nodes",
                        pair.origin, pair.destination
                    )))
                }
            };
            weights.push(ro.population.max(1.0) * rd.population.max(1.0) / (d * d));
        }
        Ok(weights)
    }
}

/// Piecewise-linear interpolation of mean speed as a function of total
/// demand, fitted on `(total_demand, mean_speed)` points from the corpus.
struct SpeedCurve {
    /// Points sorted by demand.
    points: Vec<(f64, f64)>,
}

impl SpeedCurve {
    fn fit(input: &EstimatorInput<'_>) -> Self {
        let mut points: Vec<(f64, f64)> = input
            .train
            .iter()
            .map(|s| {
                let demand = s.tod.total();
                let speed = s.speed.total() / s.speed.as_slice().len().max(1) as f64;
                (demand, speed)
            })
            .collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        Self { points }
    }

    /// Predicted mean speed at total demand `d` (clamped extrapolation).
    fn speed_at(&self, d: f64) -> f64 {
        match self.points.len() {
            0 => 0.0,
            1 => self.points[0].1,
            _ => {
                if d <= self.points[0].0 {
                    return self.points[0].1;
                }
                for w in self.points.windows(2) {
                    let ((d0, s0), (d1, s1)) = (w[0], w[1]);
                    if d <= d1 {
                        let f = if d1 > d0 { (d - d0) / (d1 - d0) } else { 0.0 };
                        return s0 + f * (s1 - s0);
                    }
                }
                self.points.last().expect("non-empty").1
            }
        }
    }
}

/// Iterative proportional fitting: scales `weights` (indexed by OD pair)
/// until its region production and attraction marginals match the targets
/// derived from `census` daily totals. Returns balanced weights.
fn ipf_balance(
    input: &EstimatorInput<'_>,
    weights: &[f64],
    census: &[f64],
    rounds: usize,
) -> Vec<f64> {
    let k = input.net.num_regions();
    // Marginal targets from census totals.
    let mut prod_target = vec![0.0; k];
    let mut attr_target = vec![0.0; k];
    for ((_, pair), &c) in input.ods.iter().zip(census) {
        prod_target[pair.origin.index()] += c;
        attr_target[pair.destination.index()] += c;
    }
    let mut w = weights.to_vec();
    for _ in 0..rounds {
        // Row (production) scaling.
        let mut prod = vec![0.0; k];
        for ((_, pair), &v) in input.ods.iter().zip(&w) {
            prod[pair.origin.index()] += v;
        }
        for ((_, pair), v) in input.ods.iter().zip(w.iter_mut()) {
            let p = prod[pair.origin.index()];
            if p > 1e-12 {
                *v *= prod_target[pair.origin.index()] / p;
            }
        }
        // Column (attraction) scaling.
        let mut attr = vec![0.0; k];
        for ((_, pair), &v) in input.ods.iter().zip(&w) {
            attr[pair.destination.index()] += v;
        }
        for ((_, pair), v) in input.ods.iter().zip(w.iter_mut()) {
            let a = attr[pair.destination.index()];
            if a > 1e-12 {
                *v *= attr_target[pair.destination.index()] / a;
            }
        }
    }
    w
}

impl TodEstimator for GravityEstimator {
    fn name(&self) -> &str {
        "Gravity"
    }

    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor> {
        ovs_core::estimator::validate_input(input)?;
        let mut weights = Self::gravity_weights(input)?;
        if self.doubly_constrained {
            if let Some(census) = input.census_totals {
                weights = ipf_balance(input, &weights, census, 20);
            }
        }
        let weight_sum: f64 = weights.iter().sum();
        if weight_sum <= 0.0 {
            return Err(RoadnetError::InvalidSpec(
                "gravity weights vanished: populations not set?".into(),
            ));
        }
        let t = input.n_intervals();
        let curve = SpeedCurve::fit(input);
        let observed_mean =
            input.observed_speed.total() / input.observed_speed.as_slice().len().max(1) as f64;

        // Grid search k: candidate total demand spans the corpus range.
        let max_total = input
            .train
            .iter()
            .map(|s| s.tod.total())
            .fold(1.0f64, f64::max);
        let grid = self.grid_points.max(2);
        let mut best = (f64::INFINITY, max_total / 2.0);
        for gi in 0..grid {
            let total = max_total * (gi as f64 + 1.0) / grid as f64 * 1.5;
            let err = (curve.speed_at(total) - observed_mean).powi(2);
            if err < best.0 {
                best = (err, total);
            }
        }
        let total_demand = best.1;
        // k such that sum over (i, t) of k * w_i equals total_demand.
        let k = total_demand / (weight_sum * t as f64);

        let mut tod = TodTensor::zeros(input.n_od(), t);
        for (i, &w) in weights.iter().enumerate() {
            for ti in 0..t {
                tod.set(OdPairId(i), ti, k * w);
            }
        }
        Ok(tod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_curve_interpolates_and_clamps() {
        let c = SpeedCurve {
            points: vec![(0.0, 12.0), (100.0, 6.0)],
        };
        assert_eq!(c.speed_at(-5.0), 12.0);
        assert_eq!(c.speed_at(200.0), 6.0);
        assert!((c.speed_at(50.0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn speed_curve_degenerate_cases() {
        assert_eq!(SpeedCurve { points: vec![] }.speed_at(3.0), 0.0);
        assert_eq!(
            SpeedCurve {
                points: vec![(5.0, 7.0)]
            }
            .speed_at(100.0),
            7.0
        );
    }

    #[test]
    fn name_matches() {
        assert_eq!(GravityEstimator::new().name(), "Gravity");
    }

    #[test]
    fn ipf_matches_marginals() {
        use datagen::dataset::DatasetSpec;
        use datagen::{Dataset, TodPattern};
        let spec = DatasetSpec {
            t: 3,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.1,
            seed: 2,
        };
        let ds = Dataset::synthetic(TodPattern::Random, &spec).unwrap();
        let census: Vec<f64> = ds.census.as_slice().to_vec();
        let input = EstimatorInput::builder(&ds.net, &ds.ods)
            .interval_s(120.0)
            .sim_seed(2)
            .train(&ds.train)
            .observed_speed(&ds.observed_speed)
            .census(&census)
            .build();
        // Need populations for the gravity weights.
        let weights = vec![1.0; ds.ods.len()];
        let balanced = ipf_balance(&input, &weights, &census, 30);
        // After balancing, production marginals match the census-derived
        // targets.
        let k = ds.net.num_regions();
        let mut prod = vec![0.0; k];
        let mut target = vec![0.0; k];
        for ((_, pair), (&b, &c)) in ds.ods.iter().zip(balanced.iter().zip(&census)) {
            prod[pair.origin.index()] += b;
            target[pair.origin.index()] += c;
        }
        for (p, t) in prod.iter().zip(&target) {
            assert!((p - t).abs() / t.max(1.0) < 0.01, "{p} vs {t}");
        }
    }
}
