//! The LSTM baseline (§V-F).
//!
//! "This method regards speed data and TOD as sequential data. It uses
//! two LSTM layers to predict TOD sequences based on speed sequences."
//!
//! Each training sample is one sequence: at step `t` the input is the
//! speed vector over all links, the target the TOD vector over all OD
//! pairs. Two LSTMs plus a time-distributed FC head. At test time the
//! observed speed sequence is pushed through once.

use checkpoint::format::{Artifact, ArtifactBuilder};
use checkpoint::CheckpointError;
use neural::layers::{Dense, Lstm, SeqLayer, SeqSequential, TimeDistributed};
use neural::loss::mse_seq;
use neural::optim::{Adam, Optimizer};
use neural::rng::Rng64;
use neural::{Matrix, Tensor3};
use ovs_core::estimator::{link_to_matrix, tod_to_matrix};
use ovs_core::{EstimatorInput, TodEstimator};
use roadnet::{LinkTensor, OdPairId, Result, RoadnetError, TodTensor};

/// Artifact kind of a trained LSTM baseline.
pub const LSTM_KIND: &str = "baseline-lstm";

/// A fitted LSTM baseline: the trained recurrent stack plus the corpus
/// normalisation scales. Save/load round trips are bit-exact.
pub struct TrainedLstm {
    net: SeqSequential,
    m: usize,
    hidden: usize,
    n: usize,
    v_scale: f64,
    g_max: f64,
}

impl TrainedLstm {
    fn build_net(m: usize, hidden: usize, n: usize) -> SeqSequential {
        // Weights are immediately overwritten by training or an import;
        // the RNG only satisfies the constructor.
        let mut rng = Rng64::new(0);
        SeqSequential::new(vec![
            Box::new(Lstm::new(m, hidden, &mut rng)),
            Box::new(Lstm::new(hidden, hidden, &mut rng)),
            Box::new(TimeDistributed::new(Dense::new(hidden, n, &mut rng))),
        ])
    }

    /// Predicts the TOD tensor for an observed speed tensor.
    pub fn predict(&mut self, observed_speed: &LinkTensor) -> TodTensor {
        let x_obs = speed_to_seq(&link_to_matrix(observed_speed), self.v_scale);
        let (_, t, _) = x_obs.shape();
        let pred = self.net.forward(&x_obs, false); // (1, t, n)
        let mut tod = TodTensor::zeros(self.n, t);
        for ti in 0..t {
            for i in 0..self.n {
                tod.set(OdPairId(i), ti, (pred.get(0, ti, i) * self.g_max).max(0.0));
            }
        }
        tod
    }

    /// Serialises the trained stack into a `"baseline-lstm"` artifact.
    pub fn to_artifact(&mut self) -> ArtifactBuilder {
        let mut b = ArtifactBuilder::new(LSTM_KIND);
        b.add_f64s("dims", &[self.m as f64, self.hidden as f64, self.n as f64]);
        b.add_f64s("scales", &[self.v_scale, self.g_max]);
        b.add_matrices(
            "weights",
            &checkpoint::module::export_seq_layer(&mut self.net),
        );
        b
    }

    /// Rebuilds a trained stack from a `"baseline-lstm"` artifact.
    pub fn from_artifact(artifact: &Artifact) -> checkpoint::Result<Self> {
        artifact.expect_kind(LSTM_KIND)?;
        let dims = artifact.f64s("dims")?;
        let scales = artifact.f64s("scales")?;
        if dims.len() != 3 || dims.iter().any(|&d| d < 1.0) || scales.len() != 2 {
            return Err(CheckpointError::Malformed(format!(
                "baseline-lstm dims/scales inconsistent: {dims:?} / {scales:?}"
            )));
        }
        let (m, hidden, n) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
        let mut net = Self::build_net(m, hidden, n);
        checkpoint::module::import_seq_layer(&mut net, &artifact.matrices("weights")?)?;
        Ok(Self {
            net,
            m,
            hidden,
            n,
            v_scale: scales[0],
            g_max: scales[1],
        })
    }
}

/// The LSTM estimator.
#[derive(Debug)]
pub struct LstmEstimator {
    /// LSTM hidden width.
    pub hidden: usize,
    /// Training steps (one sample per step, cycling).
    pub steps: usize,
    /// Learning rate.
    pub lr: f64,
    seed: u64,
}

impl LstmEstimator {
    /// Creates the estimator.
    pub fn new(seed: u64) -> Self {
        Self {
            hidden: 32,
            steps: 300,
            lr: 0.01,
            seed,
        }
    }
}

/// Packs a speed matrix `(m, t)` into a `(1, t, m)` sequence tensor.
fn speed_to_seq(v: &Matrix, scale: f64) -> Tensor3 {
    let (m, t) = v.shape();
    let mut x = Tensor3::zeros(1, t, m);
    for ti in 0..t {
        for j in 0..m {
            x.set(0, ti, j, v.get(j, ti) * scale);
        }
    }
    x
}

/// Packs a TOD matrix `(n, t)` into a `(1, t, n)` sequence tensor.
fn tod_to_seq(g: &Matrix, scale: f64) -> Tensor3 {
    let (n, t) = g.shape();
    let mut y = Tensor3::zeros(1, t, n);
    for ti in 0..t {
        for i in 0..n {
            y.set(0, ti, i, g.get(i, ti) * scale);
        }
    }
    y
}

impl LstmEstimator {
    /// Trains the stack on the input's corpus, returning the fitted
    /// model (use [`TrainedLstm::predict`] for inference, or
    /// [`TrainedLstm::to_artifact`] to persist it).
    pub fn fit(&self, input: &EstimatorInput<'_>) -> Result<TrainedLstm> {
        ovs_core::estimator::validate_input(input)?;
        if input.train.is_empty() {
            return Err(RoadnetError::InvalidSpec(
                "LSTM requires a training corpus".into(),
            ));
        }
        let n = input.n_od();
        let m = input.n_links();
        let mut rng = Rng64::new(self.seed);

        // Scales from the corpus.
        let mut v_max = 1.0f64;
        let mut g_max = 1.0f64;
        for s in input.train {
            v_max = s.speed.as_slice().iter().cloned().fold(v_max, f64::max);
            g_max = s.tod.as_slice().iter().cloned().fold(g_max, f64::max);
        }
        let v_scale = 1.0 / v_max;

        let mut net = SeqSequential::new(vec![
            Box::new(Lstm::new(m, self.hidden, &mut rng)),
            Box::new(Lstm::new(self.hidden, self.hidden, &mut rng)),
            Box::new(TimeDistributed::new(Dense::new(self.hidden, n, &mut rng))),
        ]);
        let mut opt = Adam::new(self.lr);
        for step in 0..self.steps {
            let sample = &input.train[step % input.train.len()];
            let x = speed_to_seq(&link_to_matrix(&sample.speed), v_scale);
            let y = tod_to_seq(&tod_to_matrix(&sample.tod), 1.0 / g_max);
            let pred = net.forward(&x, true);
            let (_, grad) = mse_seq(&pred, &y);
            net.backward(&grad);
            opt.step_seq(&mut net);
            net.zero_grad();
        }
        Ok(TrainedLstm {
            net,
            m,
            hidden: self.hidden,
            n,
            v_scale,
            g_max,
        })
    }
}

impl TodEstimator for LstmEstimator {
    fn name(&self) -> &str {
        "LSTM"
    }

    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor> {
        let mut trained = self.fit(input)?;
        Ok(trained.predict(input.observed_speed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_matches() {
        assert_eq!(LstmEstimator::new(0).name(), "LSTM");
    }

    #[test]
    fn packing_helpers_transpose_correctly() {
        let v = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let seq = speed_to_seq(&v, 1.0);
        assert_eq!(seq.shape(), (1, 3, 2));
        assert_eq!(seq.get(0, 0, 0), 1.0); // link 0 at t0
        assert_eq!(seq.get(0, 0, 1), 4.0); // link 1 at t0
        assert_eq!(seq.get(0, 2, 0), 3.0);
        let g = tod_to_seq(&v, 0.5);
        assert_eq!(g.get(0, 1, 1), 2.5);
    }
}
