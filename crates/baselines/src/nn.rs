//! The NN baseline (§V-F).
//!
//! "This method uses a neural network to predict the TOD, given the speed
//! data on each road segment. This network contains two fully connected
//! layers."
//!
//! A direct inverse regression: per interval, the speed vector over all
//! links is mapped to the TOD vector over all OD pairs by
//! `Dense(M -> H) -> Sigmoid -> Dense(H -> N)`. Trained on the
//! per-interval snapshots of the corpus; applied to the observed speed
//! column by column. No temporal structure — that is the LSTM baseline's
//! job.

use neural::layers::{ActKind, Activation, Dense, Layer, Sequential};
use neural::loss::mse;
use neural::optim::{Adam, Optimizer};
use neural::rng::Rng64;
use neural::Matrix;
use ovs_core::estimator::{link_to_matrix, tod_to_matrix};
use ovs_core::{EstimatorInput, TodEstimator};
use roadnet::{OdPairId, Result, RoadnetError, TodTensor};

/// The NN estimator.
#[derive(Debug)]
pub struct NnEstimator {
    /// Hidden width.
    pub hidden: usize,
    /// Training steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f64,
    seed: u64,
}

impl NnEstimator {
    /// Creates the estimator.
    pub fn new(seed: u64) -> Self {
        Self {
            hidden: 64,
            steps: 400,
            lr: 0.01,
            seed,
        }
    }
}

impl TodEstimator for NnEstimator {
    fn name(&self) -> &str {
        "NN"
    }

    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor> {
        ovs_core::estimator::validate_input(input)?;
        if input.train.is_empty() {
            return Err(RoadnetError::InvalidSpec(
                "NN requires a training corpus".into(),
            ));
        }
        let n = input.n_od();
        let m = input.n_links();
        let t = input.n_intervals();
        let mut rng = Rng64::new(self.seed);

        // Per-interval snapshots: x (samples*t, m) speed, y (samples*t, n) TOD.
        let rows = input.train.len() * t;
        let mut x = Matrix::zeros(rows, m);
        let mut y = Matrix::zeros(rows, n);
        for (s, sample) in input.train.iter().enumerate() {
            let vm = link_to_matrix(&sample.speed);
            let gm = tod_to_matrix(&sample.tod);
            for ti in 0..t {
                let r = s * t + ti;
                for j in 0..m {
                    x.set(r, j, vm.get(j, ti));
                }
                for i in 0..n {
                    y.set(r, i, gm.get(i, ti));
                }
            }
        }
        // Normalise both sides for stable training.
        let v_scale = 1.0 / x.as_slice().iter().cloned().fold(1.0, f64::max);
        let g_scale = y.as_slice().iter().cloned().fold(1.0, f64::max);
        x.scale(v_scale);
        y.scale(1.0 / g_scale);

        let mut net = Sequential::new(vec![
            Box::new(Dense::new(m, self.hidden, &mut rng)),
            Box::new(Activation::new(ActKind::Sigmoid)),
            Box::new(Dense::new(self.hidden, n, &mut rng)),
        ]);
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.steps {
            let pred = net.forward(&x, true);
            let (_, grad) = mse(&pred, &y);
            net.backward(&grad);
            opt.step(&mut net);
            net.zero_grad();
        }

        // Apply to the observation, interval by interval.
        let v_obs = link_to_matrix(input.observed_speed); // (m, t)
        let mut x_obs = Matrix::zeros(t, m);
        for ti in 0..t {
            for j in 0..m {
                x_obs.set(ti, j, v_obs.get(j, ti) * v_scale);
            }
        }
        let pred = net.forward(&x_obs, false); // (t, n), normalised
        let mut tod = TodTensor::zeros(n, t);
        for ti in 0..t {
            for i in 0..n {
                tod.set(OdPairId(i), ti, (pred.get(ti, i) * g_scale).max(0.0));
            }
        }
        Ok(tod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_matches() {
        assert_eq!(NnEstimator::new(0).name(), "NN");
    }
}
