//! The NN baseline (§V-F).
//!
//! "This method uses a neural network to predict the TOD, given the speed
//! data on each road segment. This network contains two fully connected
//! layers."
//!
//! A direct inverse regression: per interval, the speed vector over all
//! links is mapped to the TOD vector over all OD pairs by
//! `Dense(M -> H) -> Sigmoid -> Dense(H -> N)`. Trained on the
//! per-interval snapshots of the corpus; applied to the observed speed
//! column by column. No temporal structure — that is the LSTM baseline's
//! job.

use checkpoint::format::{Artifact, ArtifactBuilder};
use checkpoint::CheckpointError;
use neural::layers::{ActKind, Activation, Dense, Layer, Sequential};
use neural::loss::mse;
use neural::optim::{Adam, Optimizer};
use neural::rng::Rng64;
use neural::Matrix;
use ovs_core::estimator::{link_to_matrix, tod_to_matrix};
use ovs_core::{EstimatorInput, TodEstimator};
use roadnet::{LinkTensor, OdPairId, Result, RoadnetError, TodTensor};

/// Artifact kind of a trained NN baseline.
pub const NN_KIND: &str = "baseline-nn";

/// A fitted NN baseline: the trained two-layer net plus the corpus
/// normalisation scales — everything inference needs, detached from the
/// training corpus. Save/load round trips are bit-exact.
pub struct TrainedNn {
    net: Sequential,
    m: usize,
    hidden: usize,
    n: usize,
    v_scale: f64,
    g_scale: f64,
}

impl TrainedNn {
    fn build_net(m: usize, hidden: usize, n: usize) -> Sequential {
        // Weights are immediately overwritten by training or an import;
        // the RNG only satisfies the constructor.
        let mut rng = Rng64::new(0);
        Sequential::new(vec![
            Box::new(Dense::new(m, hidden, &mut rng)),
            Box::new(Activation::new(ActKind::Sigmoid)),
            Box::new(Dense::new(hidden, n, &mut rng)),
        ])
    }

    /// Predicts the TOD tensor for an observed speed tensor, interval by
    /// interval.
    pub fn predict(&mut self, observed_speed: &LinkTensor) -> TodTensor {
        let v_obs = link_to_matrix(observed_speed); // (m, t)
        let t = v_obs.cols();
        let mut x_obs = Matrix::zeros(t, self.m);
        for ti in 0..t {
            for j in 0..self.m {
                x_obs.set(ti, j, v_obs.get(j, ti) * self.v_scale);
            }
        }
        let pred = self.net.forward(&x_obs, false); // (t, n), normalised
        let mut tod = TodTensor::zeros(self.n, t);
        for ti in 0..t {
            for i in 0..self.n {
                tod.set(OdPairId(i), ti, (pred.get(ti, i) * self.g_scale).max(0.0));
            }
        }
        tod
    }

    /// Serialises the trained net into a `"baseline-nn"` artifact.
    pub fn to_artifact(&mut self) -> ArtifactBuilder {
        let mut b = ArtifactBuilder::new(NN_KIND);
        b.add_f64s("dims", &[self.m as f64, self.hidden as f64, self.n as f64]);
        b.add_f64s("scales", &[self.v_scale, self.g_scale]);
        b.add_matrices("weights", &checkpoint::module::export_layer(&mut self.net));
        b
    }

    /// Rebuilds a trained net from a `"baseline-nn"` artifact.
    pub fn from_artifact(artifact: &Artifact) -> checkpoint::Result<Self> {
        artifact.expect_kind(NN_KIND)?;
        let dims = artifact.f64s("dims")?;
        let scales = artifact.f64s("scales")?;
        if dims.len() != 3 || dims.iter().any(|&d| d < 1.0) || scales.len() != 2 {
            return Err(CheckpointError::Malformed(format!(
                "baseline-nn dims/scales inconsistent: {dims:?} / {scales:?}"
            )));
        }
        let (m, hidden, n) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
        let mut net = Self::build_net(m, hidden, n);
        checkpoint::module::import_layer(&mut net, &artifact.matrices("weights")?)?;
        Ok(Self {
            net,
            m,
            hidden,
            n,
            v_scale: scales[0],
            g_scale: scales[1],
        })
    }
}

/// The NN estimator.
#[derive(Debug)]
pub struct NnEstimator {
    /// Hidden width.
    pub hidden: usize,
    /// Training steps.
    pub steps: usize,
    /// Learning rate.
    pub lr: f64,
    seed: u64,
}

impl NnEstimator {
    /// Creates the estimator.
    pub fn new(seed: u64) -> Self {
        Self {
            hidden: 64,
            steps: 400,
            lr: 0.01,
            seed,
        }
    }
}

impl NnEstimator {
    /// Trains the network on the input's corpus, returning the fitted
    /// model (use [`TrainedNn::predict`] for inference, or
    /// [`TrainedNn::to_artifact`] to persist it).
    pub fn fit(&self, input: &EstimatorInput<'_>) -> Result<TrainedNn> {
        ovs_core::estimator::validate_input(input)?;
        if input.train.is_empty() {
            return Err(RoadnetError::InvalidSpec(
                "NN requires a training corpus".into(),
            ));
        }
        let n = input.n_od();
        let m = input.n_links();
        let t = input.n_intervals();
        let mut rng = Rng64::new(self.seed);

        // Per-interval snapshots: x (samples*t, m) speed, y (samples*t, n) TOD.
        let rows = input.train.len() * t;
        let mut x = Matrix::zeros(rows, m);
        let mut y = Matrix::zeros(rows, n);
        for (s, sample) in input.train.iter().enumerate() {
            let vm = link_to_matrix(&sample.speed);
            let gm = tod_to_matrix(&sample.tod);
            for ti in 0..t {
                let r = s * t + ti;
                for j in 0..m {
                    x.set(r, j, vm.get(j, ti));
                }
                for i in 0..n {
                    y.set(r, i, gm.get(i, ti));
                }
            }
        }
        // Normalise both sides for stable training.
        let v_scale = 1.0 / x.as_slice().iter().cloned().fold(1.0, f64::max);
        let g_scale = y.as_slice().iter().cloned().fold(1.0, f64::max);
        x.scale(v_scale);
        y.scale(1.0 / g_scale);

        let mut net = Sequential::new(vec![
            Box::new(Dense::new(m, self.hidden, &mut rng)),
            Box::new(Activation::new(ActKind::Sigmoid)),
            Box::new(Dense::new(self.hidden, n, &mut rng)),
        ]);
        let mut opt = Adam::new(self.lr);
        for _ in 0..self.steps {
            let pred = net.forward(&x, true);
            let (_, grad) = mse(&pred, &y);
            net.backward(&grad);
            opt.step(&mut net);
            net.zero_grad();
        }
        Ok(TrainedNn {
            net,
            m,
            hidden: self.hidden,
            n,
            v_scale,
            g_scale,
        })
    }
}

impl TodEstimator for NnEstimator {
    fn name(&self) -> &str {
        "NN"
    }

    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor> {
        let mut trained = self.fit(input)?;
        Ok(trained.predict(input.observed_speed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_matches() {
        assert_eq!(NnEstimator::new(0).name(), "NN");
    }
}
