//! # baselines — the six comparison methods of the paper's §V-F
//!
//! Every baseline implements [`ovs_core::TodEstimator`], so the evaluation
//! harness treats them interchangeably with OVS:
//!
//! | Method   | Idea (paper's description)                                            |
//! |----------|------------------------------------------------------------------------|
//! | Gravity  | trips proportional to `p_i p_j / d_ij^2`; `k` grid-searched, static    |
//! | Genetic  | population search for the TOD whose *simulated* speed matches best     |
//! | GLS      | linear assignment matrix TOD->volume (least squares) + NN speed head   |
//! | EM       | iterative Gaussian estimation of TOD given a linear speed-deficit model|
//! | NN       | two FC layers predicting TOD from speed, per interval                  |
//! | LSTM     | two LSTM layers predicting the TOD sequence from the speed sequence    |
//!
//! Dense linear algebra (ridge regression via Cholesky-free Gaussian
//! elimination) lives in [`linalg`]; no external solver crates are used.

#![warn(missing_docs)]

pub mod em;
pub mod genetic;
pub mod gls;
pub mod gravity;
pub mod linalg;
pub mod lstm;
pub mod nn;

pub use em::EmEstimator;
pub use genetic::GeneticEstimator;
pub use gls::GlsEstimator;
pub use gravity::GravityEstimator;
pub use lstm::{LstmEstimator, TrainedLstm};
pub use nn::{NnEstimator, TrainedNn};

use ovs_core::TodEstimator;

/// All six baselines with default settings, in the paper's table order.
pub fn all_baselines(seed: u64) -> Vec<Box<dyn TodEstimator>> {
    vec![
        Box::new(GravityEstimator::new()),
        Box::new(GeneticEstimator::new(seed)),
        Box::new(GlsEstimator::new(seed)),
        Box::new(EmEstimator::new()),
        Box::new(NnEstimator::new(seed)),
        Box::new(LstmEstimator::new(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_names_match_paper_tables() {
        let methods = all_baselines(0);
        let names: Vec<&str> = methods.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["Gravity", "Genetic", "GLS", "EM", "NN", "LSTM"]);
    }
}
