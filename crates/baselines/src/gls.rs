//! The GLS baseline (§V-F).
//!
//! "These methods assume a linear assignment matrix that maps TOD to link
//! volume. A neural net is stacked behind to predict the speed."
//!
//! The classic generalised-least-squares pipeline (Cascetta 1984; Bell
//! 1991), adapted to speed observations:
//!
//! 1. the **assignment matrix** `A` (`q_t = A^T g_t`) is fitted by ridge
//!    least squares over all per-interval snapshots of the corpus;
//! 2. a per-link **volume-speed regression** (the stacked speed predictor;
//!    we keep it linear per link, which is what makes the method GLS and
//!    not OVS) is fitted on the corpus and *inverted* to turn the observed
//!    speeds into volume estimates;
//! 3. each interval's TOD is the regularised least-squares solution of
//!    `A^T g = q_est`, clamped to non-negative trip counts.
//!
//! Everything is a linear solve — deterministic, fast, and exactly as
//! brittle as the paper argues: the linear assignment cannot express
//! congestion-dependent delays, which is why OVS's dynamic attention
//! beats it.

use crate::linalg::{ridge, solve};
use neural::Matrix;
use ovs_core::estimator::{link_to_matrix, tod_to_matrix};
use ovs_core::{EstimatorInput, TodEstimator};
use roadnet::{OdPairId, Result, RoadnetError, TodTensor};

/// The GLS estimator.
#[derive(Debug)]
pub struct GlsEstimator {
    /// Ridge regularisation for the assignment matrix.
    pub lambda_a: f64,
    /// Relative regularisation of the per-interval TOD solve.
    pub lambda_g: f64,
}

impl GlsEstimator {
    /// Creates the estimator. The `seed` parameter is kept for interface
    /// symmetry with the stochastic baselines; GLS itself is
    /// deterministic.
    pub fn new(_seed: u64) -> Self {
        Self {
            lambda_a: 1e-2,
            lambda_g: 0.05,
        }
    }
}

/// Stacks per-interval snapshots: rows = (sample, interval).
fn snapshots(input: &EstimatorInput<'_>) -> (Matrix, Matrix, Matrix) {
    let n = input.n_od();
    let m = input.n_links();
    let t = input.n_intervals();
    let rows = input.train.len() * t;
    let mut g = Matrix::zeros(rows, n);
    let mut q = Matrix::zeros(rows, m);
    let mut v = Matrix::zeros(rows, m);
    for (s, sample) in input.train.iter().enumerate() {
        let gm = tod_to_matrix(&sample.tod);
        let qm = link_to_matrix(&sample.volume);
        let vm = link_to_matrix(&sample.speed);
        for ti in 0..t {
            let r = s * t + ti;
            for i in 0..n {
                g.set(r, i, gm.get(i, ti));
            }
            for j in 0..m {
                q.set(r, j, qm.get(j, ti));
                v.set(r, j, vm.get(j, ti));
            }
        }
    }
    (g, q, v)
}

/// Per-link 1-D least squares `q = a + b v`; returns `(a, b)` per link.
fn fit_speed_inverse(q: &Matrix, v: &Matrix) -> Vec<(f64, f64)> {
    let rows = q.rows();
    let m = q.cols();
    (0..m)
        .map(|j| {
            let (mut sv, mut sq, mut svv, mut svq) = (0.0, 0.0, 0.0, 0.0);
            for r in 0..rows {
                let vv = v.get(r, j);
                let qv = q.get(r, j);
                sv += vv;
                sq += qv;
                svv += vv * vv;
                svq += vv * qv;
            }
            let nf = rows as f64;
            let denom = nf * svv - sv * sv;
            if denom.abs() < 1e-9 {
                (sq / nf.max(1.0), 0.0)
            } else {
                let b = (nf * svq - sv * sq) / denom;
                let a = (sq - b * sv) / nf;
                (a, b)
            }
        })
        .collect()
}

impl TodEstimator for GlsEstimator {
    fn name(&self) -> &str {
        "GLS"
    }

    fn estimate(&mut self, input: &EstimatorInput<'_>) -> Result<TodTensor> {
        ovs_core::estimator::validate_input(input)?;
        if input.train.is_empty() {
            return Err(RoadnetError::InvalidSpec(
                "GLS requires a training corpus".into(),
            ));
        }
        let n = input.n_od();
        let m = input.n_links();
        let t = input.n_intervals();

        // 1. assignment matrix: q_row = g_row @ A, A is (n, m).
        let (g_snap, q_snap, v_snap) = snapshots(input);
        let a = ridge(&g_snap, &q_snap, self.lambda_a)
            .ok_or_else(|| RoadnetError::InvalidSpec("assignment-matrix solve failed".into()))?;

        // 2. invert the observed speeds into volume estimates.
        let inv = fit_speed_inverse(&q_snap, &v_snap);
        let v_obs = link_to_matrix(input.observed_speed); // (m, t)
        let mut q_est = Matrix::zeros(t, m);
        for ti in 0..t {
            for (j, &(c0, c1)) in inv.iter().enumerate() {
                q_est.set(ti, j, (c0 + c1 * v_obs.get(j, ti)).max(0.0));
            }
        }

        // 3. per-interval regularised solve: (A A^T + lam I) g = A q_est.
        let mut aat = a.matmul_a_bt(&a); // (n, n)
        let trace: f64 = (0..n).map(|i| aat.get(i, i)).sum();
        let lam = self.lambda_g * trace / n.max(1) as f64 + 1e-9;
        for i in 0..n {
            let v = aat.get(i, i);
            aat.set(i, i, v + lam);
        }
        // Regularise toward the corpus mean rather than zero: the
        // classical GLS target matrix.
        let g_prior = g_snap.mean();

        let mut tod = TodTensor::zeros(n, t);
        for ti in 0..t {
            let rhs: Vec<f64> = (0..n)
                .map(|i| {
                    let mut acc = lam * g_prior;
                    for j in 0..m {
                        acc += a.get(i, j) * q_est.get(ti, j);
                    }
                    acc
                })
                .collect();
            let sol = solve(&aat, &rhs)
                .ok_or_else(|| RoadnetError::InvalidSpec("per-interval TOD solve failed".into()))?;
            for (i, g) in sol.into_iter().enumerate() {
                tod.set(OdPairId(i), ti, g.max(0.0));
            }
        }
        Ok(tod)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_matches() {
        assert_eq!(GlsEstimator::new(0).name(), "GLS");
    }

    #[test]
    fn speed_inverse_recovers_linear_law() {
        // q = 10 - 2 v exactly.
        let rows = 8;
        let v = Matrix::from_fn(rows, 1, |r, _| r as f64 * 0.5);
        let q = v.map(|x| 10.0 - 2.0 * x);
        let fit = fit_speed_inverse(&q, &v);
        assert!((fit[0].0 - 10.0).abs() < 1e-9);
        assert!((fit[0].1 + 2.0).abs() < 1e-9);
    }

    #[test]
    fn speed_inverse_handles_constant_speed() {
        let v = Matrix::filled(5, 1, 3.0);
        let q = Matrix::from_fn(5, 1, |r, _| r as f64);
        let fit = fit_speed_inverse(&q, &v);
        assert_eq!(fit[0].1, 0.0);
        assert!((fit[0].0 - 2.0).abs() < 1e-9, "falls back to mean volume");
    }
}
