//! The determinism contract of the fault harness: the same `FaultPlan`
//! seed yields byte-identical corrupted observation tensors and identical
//! recovery-event counters whether the work runs on one worker thread or
//! four (the programmatic equivalent of `CITYOD_THREADS=1` vs `4`).

use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use fault::observation::{OBS_DROPPED, OBS_NOISY, OBS_NONFINITE, OBS_STUCK};
use fault::training::TRAIN_POISONED;
use fault::{corrupt_observation, ObservationFaults, TrainingFaultInjector, TrainingFaults};
use ovs_core::{EstimatorInput, OvsConfig, OvsTrainer, RecoveryPolicy, Stage};
use proptest::prelude::*;
use roadnet::parallel::Parallelism;
use roadnet::LinkTensor;

fn synthetic_speed(seed: u64, rows: usize, t: usize) -> LinkTensor {
    let mut rng = neural::rng::Rng64::new(seed);
    let data: Vec<f64> = (0..rows * t).map(|_| rng.uniform_in(2.0, 16.0)).collect();
    LinkTensor::from_data(rows, t, data).unwrap()
}

fn bits(t: &LinkTensor) -> Vec<u64> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Corruption is a pure function of `(tensor, faults, seed)` — the
    /// worker-thread count never changes a byte of the output.
    fn corruption_is_thread_count_invariant(
        seed in 0u64..10_000,
        dropout in 0.0f64..0.6,
        noise_std in 0.0f64..2.0,
    ) {
        let clean = synthetic_speed(seed ^ 0xABCD, 40, 6);
        let faults = ObservationFaults {
            dropout,
            noise_std,
            stuck: 0.2,
            nonfinite: 0.05,
        };
        let serial = Parallelism::Serial.run(|| corrupt_observation(&clean, &faults, seed));
        let par = Parallelism::Threads(4).run(|| corrupt_observation(&clean, &faults, seed));
        prop_assert_eq!(bits(&serial.speed), bits(&par.speed));
        prop_assert_eq!(&serial.mask, &par.mask);
        prop_assert_eq!(serial.stats, par.stats);
        // And the imputation built on top is equally invariant.
        prop_assert_eq!(bits(&serial.imputed()), bits(&par.imputed()));
    }
}

fn counter_names() -> Vec<&'static str> {
    vec![
        OBS_DROPPED,
        OBS_STUCK,
        OBS_NONFINITE,
        OBS_NOISY,
        TRAIN_POISONED,
        "trainer_fit_nonfinite_total",
        "trainer_fit_rollbacks_total",
        "trainer_fit_lr_backoffs_total",
        "trainer_fit_diverged_total",
    ]
}

fn snapshot(names: &[&str]) -> Vec<u64> {
    names
        .iter()
        .map(|n| obs::global().counter(n).get())
        .collect()
}

/// One full faulted pipeline pass under the given parallelism: corrupt
/// the observation, impute, train guarded with a poisoned fit step, and
/// return the deltas of every fault/recovery counter.
fn faulted_run_deltas(par: Parallelism) -> Vec<u64> {
    let names = counter_names();
    let before = snapshot(&names);
    par.run(|| {
        let spec = DatasetSpec {
            t: 3,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.2,
            seed: 9,
        };
        let ds = Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap();
        let faults = ObservationFaults {
            dropout: 0.3,
            noise_std: 0.2,
            stuck: 0.1,
            nonfinite: 0.02,
        };
        let corrupted = corrupt_observation(&ds.observed_speed, &faults, 21);
        let imputed = corrupted.imputed();
        let input = EstimatorInput::builder(&ds.net, &ds.ods)
            .interval_s(ds.sim_config.interval_s)
            .sim_seed(ds.sim_config.seed)
            .train(&ds.train)
            .observed_speed(&imputed)
            .build();
        let cfg = OvsConfig {
            dropout: 0.0,
            ..OvsConfig::tiny()
        };
        let mut injector = TrainingFaultInjector::new(&TrainingFaults {
            stage: Some(fault::StageSel::Fit),
            nonfinite_steps: vec![3],
            ckpt_fail_steps: vec![],
            persistent: false,
        });
        let mut tamper = |stage: Stage, step: usize, loss: &mut f64, norm: &mut f64| {
            injector.tamper(stage, step, loss, norm);
        };
        OvsTrainer::new(cfg)
            .run_resumable_guarded(
                &input,
                7,
                &mut |_| Ok(()),
                None,
                RecoveryPolicy::default(),
                Some(&mut tamper),
            )
            .expect("transient fault must heal");
        assert_eq!(injector.injected(), 1);
    });
    let after = snapshot(&names);
    after.iter().zip(&before).map(|(a, b)| a - b).collect()
}

#[test]
fn recovery_counters_are_thread_count_invariant() {
    let serial = faulted_run_deltas(Parallelism::Serial);
    let par = faulted_run_deltas(Parallelism::Threads(4));
    let names = counter_names();
    for (i, name) in names.iter().enumerate() {
        assert_eq!(
            serial[i], par[i],
            "counter {name} differs between 1 and 4 threads"
        );
    }
    // The scenario actually exercised the counters it claims to compare.
    let idx = |n: &str| names.iter().position(|&x| x == n).unwrap();
    assert!(serial[idx(OBS_DROPPED)] > 0);
    assert_eq!(serial[idx(TRAIN_POISONED)], 1);
    assert_eq!(serial[idx("trainer_fit_nonfinite_total")], 1);
    assert_eq!(serial[idx("trainer_fit_rollbacks_total")], 1);
    assert_eq!(serial[idx("trainer_fit_diverged_total")], 0);
}
