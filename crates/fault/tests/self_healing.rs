//! The acceptance scenario of the fault harness: a plan that poisons a
//! training loss at step `k`, interrupts a checkpoint write, AND corrupts
//! a checkpoint artifact on disk — and the pipeline still completes,
//! producing a final model bit-identical to a clean run with the same
//! seed.

use checkpoint::store::{ArtifactStore, Provenance};
use checkpoint::{RecordingClock, RetryPolicy};
use datagen::dataset::DatasetSpec;
use datagen::{Dataset, TodPattern};
use fault::{
    latest_good_version, CkptInterrupter, FaultPlan, StageSel, StorageFaults,
    TrainingFaultInjector, TrainingFaults,
};
use ovs_core::{
    artifact, EstimatorInput, OvsConfig, OvsTrainer, RecoveryPolicy, Stage, TrainError,
};

fn tiny_dataset() -> Dataset {
    let spec = DatasetSpec {
        t: 3,
        interval_s: 120.0,
        train_samples: 3,
        demand_scale: 0.2,
        seed: 9,
    };
    Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap()
}

fn input(ds: &Dataset) -> EstimatorInput<'_> {
    EstimatorInput::builder(&ds.net, &ds.ods)
        .interval_s(ds.sim_config.interval_s)
        .sim_seed(ds.sim_config.seed)
        .train(&ds.train)
        .observed_speed(&ds.observed_speed)
        .build()
}

fn cfg() -> OvsConfig {
    OvsConfig {
        dropout: 0.0,
        ..OvsConfig::tiny()
    }
}

fn temp_store(tag: &str) -> (std::path::PathBuf, ArtifactStore) {
    let dir =
        std::env::temp_dir().join(format!("cityod-self-healing-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir).unwrap();
    (dir, store)
}

/// Non-finite loss at a fit step + one interrupted checkpoint write + a
/// bit-flipped artifact on disk: the guarded run completes via rollback
/// and retry, every surviving artifact is recoverable, and the final
/// model is bit-identical to the uninjected run.
#[test]
fn combined_faults_heal_to_a_bit_identical_model() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let trainer = OvsTrainer::new(cfg());

    // Reference: clean, uninjected run.
    let (mut ref_model, ref_report) = trainer.run(&inp).unwrap();
    let ref_weights = ref_model.export_weights();

    // Faulted run: the plan poisons fit step 9 and fails the checkpoint
    // write at fit step 7 (transient, once each).
    let plan = FaultPlan {
        seed: 5,
        training: TrainingFaults {
            stage: Some(StageSel::Fit),
            nonfinite_steps: vec![9],
            ckpt_fail_steps: vec![7],
            persistent: false,
        },
        storage: StorageFaults {
            bit_flips: 3,
            truncate_bytes: 0,
        },
        ..Default::default()
    };
    let (dir, store) = temp_store("combined");
    let prov = Provenance::new("ovs-pipeline", "{}", plan.seed);

    let mut injector = TrainingFaultInjector::new(&plan.training);
    let mut interrupter = CkptInterrupter::new(&plan.training);
    let mut tamper = |stage: Stage, step: usize, loss: &mut f64, norm: &mut f64| {
        injector.tamper(stage, step, loss, norm);
    };
    let mut hook = |cp: &ovs_core::PipelineCheckpoint| {
        interrupter.intercept(cp)?;
        let b = artifact::save_pipeline(cp, &cfg())
            .map_err(|e| roadnet::RoadnetError::Internal(e.to_string()))?;
        store
            .save_versioned("pipe", &b, &prov)
            .map_err(|e| roadnet::RoadnetError::Internal(e.to_string()))?;
        Ok(())
    };
    let (mut healed_model, healed_report) = trainer
        .run_resumable_guarded(
            &inp,
            7,
            &mut hook,
            None,
            RecoveryPolicy::default(),
            Some(&mut tamper),
        )
        .expect("transient faults must heal");

    assert_eq!(injector.injected(), 1, "the loss fault fired once");
    assert_eq!(interrupter.interrupted(), 1, "the write fault fired once");
    // Bit-identical outcome: traces and weights match the clean run.
    assert_eq!(healed_report.v2s_losses, ref_report.v2s_losses);
    assert_eq!(healed_report.tod2v_losses, ref_report.tod2v_losses);
    assert_eq!(healed_report.fit_losses, ref_report.fit_losses);
    assert_eq!(healed_model.export_weights(), ref_weights);

    // Storage layer: corrupt the newest saved pipeline artifact on disk;
    // the recovery walk quarantines it and falls back to the previous
    // version, which still resumes onto the reference trajectory.
    let names = store.names().unwrap();
    let newest = names.iter().max().unwrap().clone();
    assert!(names.len() >= 2, "expected several versions, got {names:?}");
    assert!(
        fault::corrupt_artifact_file(&store.artifact_path(&newest), &plan.storage, plan.seed)
            .unwrap()
    );
    let clock = RecordingClock::new();
    let (good_name, good) = latest_good_version(&store, "pipe", &RetryPolicy::default(), &clock)
        .unwrap()
        .expect("an older good version must survive");
    assert_ne!(good_name, newest, "the corrupt newest version was skipped");
    assert!(!store.names().unwrap().contains(&newest), "quarantined");

    let cp = artifact::load_pipeline(good.artifact(), &cfg()).unwrap();
    let (mut resumed_model, resumed_report) = trainer
        .run_resumable(&inp, 0, &mut |_| Ok(()), Some(cp))
        .unwrap();
    assert_eq!(resumed_report.fit_losses, ref_report.fit_losses);
    assert_eq!(resumed_model.export_weights(), ref_weights);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A persistent fault — the same step poisoned on every visit — must
/// exhaust the retry budget and surface as the typed divergence error,
/// not hang or panic.
#[test]
fn persistent_poison_exhausts_retries_and_diverges() {
    let ds = tiny_dataset();
    let inp = input(&ds);
    let trainer = OvsTrainer::new(cfg());

    let mut injector = TrainingFaultInjector::new(&TrainingFaults {
        stage: Some(StageSel::Fit),
        nonfinite_steps: vec![4],
        ckpt_fail_steps: vec![],
        persistent: true,
    });
    let mut tamper = |stage: Stage, step: usize, loss: &mut f64, norm: &mut f64| {
        injector.tamper(stage, step, loss, norm);
    };
    let outcome = trainer.run_resumable_guarded(
        &inp,
        0,
        &mut |_| Ok(()),
        None,
        RecoveryPolicy {
            max_retries: 2,
            lr_backoff: 0.5,
        },
        Some(&mut tamper),
    );
    let Err(err) = outcome else {
        panic!("a persistent fault must not heal");
    };
    match err {
        TrainError::Diverged {
            stage,
            step,
            retries,
        } => {
            assert_eq!(stage, Stage::Fit);
            assert_eq!(step, 4);
            assert_eq!(retries, 2);
        }
        other => panic!("expected Diverged, got {other}"),
    }
    assert!(injector.injected() >= 3, "initial hit + every retry");
}
