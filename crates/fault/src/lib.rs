//! # fault — deterministic fault injection for the OVS pipeline
//!
//! The paper's pipeline assumes clean inputs: every sensor reports,
//! every loss is finite, every checkpoint byte survives. This crate is
//! the adversary that removes those assumptions — *reproducibly*. A
//! seeded [`FaultPlan`] describes an outage scenario at three layers:
//!
//! * **observation** ([`observation`]) — per-link sensor dropout, additive
//!   Gaussian noise, stuck/stale readings and `NaN`/`Inf` corruption of
//!   the observed speed tensor, applied before fitting;
//! * **training** ([`training`]) — forced non-finite losses and
//!   interrupted checkpoint writes at chosen steps, driven through the
//!   trainer's tamper tap and exercising its rollback-and-retry guard;
//! * **storage** ([`storage`]) — seeded bit-flips and truncation of
//!   checkpoint artifacts at rest, exercising the store's audit, retry
//!   and quarantine paths;
//! * **network** ([`network`]) — a declarative incident timeline (road
//!   closures, capacity-cutting incidents, signal outages) replayed
//!   deterministically by the simulator mid-run, plus a severity ×
//!   duration sweep template for degradation/recovery grids.
//!
//! Everything derives from [`FaultPlan::seed`] through per-index RNG
//! streams ([`neural::rng::Rng64::for_index`]), so any scenario —
//! including the damage pattern of a 30% sensor outage over a
//! 10 000-link network — replays bit-identically at any worker-thread
//! count. [`report::degradation_report`] turns a plan into the paper-style
//! robustness artifact: recovered-TOD accuracy as a function of dropout
//! fraction and noise level, with the speed RMSE masked to surviving
//! sensors. Every injection and recovery event lands in stable `obs`
//! counters (`fault_*`, `trainer_*`, `store_*`), so a fault run's
//! `to_json_stable()` export is itself a deterministic artifact.

#![warn(missing_docs)]

pub mod network;
pub mod observation;
pub mod plan;
pub mod report;
pub mod storage;
pub mod training;

pub use network::{IncidentSpec, IncidentSweep, NetworkFaults};
pub use observation::{corrupt_observation, CorruptedObservation, ObservationStats};
pub use plan::{
    FaultPlan, ObservationFaults, PlanError, StageSel, StorageFaults, SweepGrid, TrainingFaults,
};
pub use report::{degradation_report, DegradationPoint, DegradationReport};
pub use storage::{corrupt_artifact_bytes, corrupt_artifact_file, latest_good_version};
pub use training::{CkptInterrupter, TrainingFaultInjector};
