//! Storage-layer fault injection: corrupting checkpoint artifacts at rest.
//!
//! [`corrupt_artifact_bytes`] applies seeded single-bit flips and/or a
//! tail truncation to a serialized artifact; [`corrupt_artifact_file`]
//! does the same in place on disk. Flip positions come from
//! `Rng64::for_index(seed, flip_index)` restricted to the payload region
//! past the container header, so the damage lands in section bytes the
//! CRC table must catch rather than in the magic number (which would be a
//! different, less interesting failure).
//!
//! [`latest_good_version`] is the recovery-side helper: walk a versioned
//! artifact family newest-first, quarantining corrupt entries, and return
//! the first one that loads clean.

use crate::plan::StorageFaults;
use checkpoint::store::ArtifactStore;
use checkpoint::{Clock, RetryPolicy, Snapshot};
use neural::rng::Rng64;
use obs::global;
use std::path::Path;

/// Stable counter: artifacts corrupted by the storage injector.
pub const STORAGE_CORRUPTED: &str = "fault_storage_corrupted_artifacts_total";

/// Container bytes the injector never touches: magic (8) + version (4) +
/// section count (4). Damaging those produces an immediate `BadMagic` /
/// structural error instead of exercising the per-section CRC path.
const HEADER_BYTES: usize = 16;

/// Applies the plan's storage faults to serialized artifact bytes.
/// Deterministic in `(bytes, faults, seed)`. Returns `true` if anything
/// was changed.
pub fn corrupt_artifact_bytes(bytes: &mut Vec<u8>, faults: &StorageFaults, seed: u64) -> bool {
    let mut changed = false;
    if faults.bit_flips > 0 && bytes.len() > HEADER_BYTES {
        let span = bytes.len() - HEADER_BYTES;
        for flip in 0..faults.bit_flips {
            let mut rng = Rng64::for_index(seed, flip as u64);
            let pos = HEADER_BYTES + rng.index(span);
            let bit = rng.index(8) as u8;
            if let Some(b) = bytes.get_mut(pos) {
                *b ^= 1 << bit;
                changed = true;
            }
        }
    }
    if faults.truncate_bytes > 0 {
        let cut = (faults.truncate_bytes as usize).min(bytes.len());
        bytes.truncate(bytes.len() - cut);
        changed = cut > 0 || changed;
    }
    if changed {
        global().counter(STORAGE_CORRUPTED).inc();
    }
    changed
}

/// In-place file variant of [`corrupt_artifact_bytes`].
pub fn corrupt_artifact_file(
    path: &Path,
    faults: &StorageFaults,
    seed: u64,
) -> std::io::Result<bool> {
    let mut bytes = std::fs::read(path)?;
    let changed = corrupt_artifact_bytes(&mut bytes, faults, seed);
    if changed {
        std::fs::write(path, &bytes)?;
    }
    Ok(changed)
}

/// Walks a versioned family (`{family}-vNNN`) newest-first and returns
/// a [`Snapshot`] of the first version that loads clean, quarantining
/// every corrupt entry it skips. `Ok(None)` means no version of the
/// family survived. Thin wrapper over
/// [`ArtifactStore::latest_good`] — the single validated read path
/// shared with the serving layer's snapshot watcher.
pub fn latest_good_version(
    store: &ArtifactStore,
    family: &str,
    policy: &RetryPolicy,
    clock: &dyn Clock,
) -> checkpoint::Result<Option<(String, Snapshot)>> {
    Ok(store
        .latest_good(family, policy, clock)?
        .map(|snap| (snap.name().to_string(), snap)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkpoint::store::Provenance;
    use checkpoint::{audit_bytes, ArtifactBuilder, RecordingClock};

    fn builder() -> ArtifactBuilder {
        let mut b = ArtifactBuilder::new("fault-test");
        b.add_f64s("weights", &[1.0, 2.0, 3.0, 4.0]);
        b.add_f64s("losses", &[0.5, 0.25]);
        b
    }

    fn artifact_bytes() -> Vec<u8> {
        builder().to_bytes()
    }

    #[test]
    fn bit_flips_are_deterministic_and_caught_by_the_audit() {
        let clean = artifact_bytes();
        let mut a = clean.clone();
        let mut b = clean.clone();
        let faults = StorageFaults {
            bit_flips: 2,
            truncate_bytes: 0,
        };
        assert!(corrupt_artifact_bytes(&mut a, &faults, 7));
        assert!(corrupt_artifact_bytes(&mut b, &faults, 7));
        assert_eq!(a, b, "same seed, same damage");
        assert_ne!(a, clean);
        assert_eq!(a.len(), clean.len(), "flips never change the length");
        // Header bytes are preserved by construction.
        assert_eq!(&a[..HEADER_BYTES], &clean[..HEADER_BYTES]);
        // The audit sees the damage (flips may land in the section table
        // itself, which surfaces as structural damage instead).
        let audit = audit_bytes(&a);
        assert!(!audit.is_clean());
    }

    #[test]
    fn truncation_shortens_and_audit_flags_structural_damage() {
        let clean = artifact_bytes();
        let mut a = clean.clone();
        let faults = StorageFaults {
            bit_flips: 0,
            truncate_bytes: 5,
        };
        assert!(corrupt_artifact_bytes(&mut a, &faults, 0));
        assert_eq!(a.len(), clean.len() - 5);
        let audit = audit_bytes(&a);
        assert!(!audit.is_clean());
    }

    #[test]
    fn inert_faults_change_nothing() {
        let clean = artifact_bytes();
        let mut a = clean.clone();
        assert!(!corrupt_artifact_bytes(
            &mut a,
            &StorageFaults::default(),
            3
        ));
        assert_eq!(a, clean);
    }

    #[test]
    fn latest_good_version_skips_corrupt_newest() {
        let dir = std::env::temp_dir().join(format!(
            "cityod-fault-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        let b = builder();
        let prov = Provenance::new("fault-test", "{}", 0);
        let v1 = store.save_versioned("model", &b, &prov);
        let v2 = store.save_versioned("model", &b, &prov);
        let (v1, v2) = (v1.unwrap(), v2.unwrap());
        assert_eq!((v1.as_str(), v2.as_str()), ("model-v001", "model-v002"));
        // Corrupt the newest version on disk.
        let faults = StorageFaults {
            bit_flips: 4,
            truncate_bytes: 0,
        };
        corrupt_artifact_file(&store.artifact_path(&v2), &faults, 1).unwrap();
        let clock = RecordingClock::new();
        let got = latest_good_version(&store, "model", &RetryPolicy::default(), &clock)
            .unwrap()
            .expect("v001 is still good");
        assert_eq!(got.0, "model-v001");
        // The corrupt newest version was quarantined out of the listing.
        assert!(!store.names().unwrap().contains(&v2));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
