//! The degradation report: accuracy as a function of injected damage.
//!
//! [`degradation_report`] evaluates the full OVS pipeline at every point
//! of the plan's sweep grid (dropout fraction x noise sigma). Each point
//! corrupts the observed speed tensor under its own derived seed
//! (`Rng64::stream_seed(plan.seed, point_index)`), fits OVS against the
//! *imputed* tensor — the pipeline never sees a `NaN` — and scores the
//! recovered TOD with the masked metrics, so dropped sensors are
//! excluded from the speed RMSE instead of entering as zero readings.
//! Training faults in the plan are injected into every point's run
//! through the trainer's guarded entry point, exercising the
//! rollback-and-retry path while the sweep measures accuracy.

use crate::observation::corrupt_observation;
use crate::plan::{FaultPlan, ObservationFaults};
use crate::training::TrainingFaultInjector;
use datagen::Dataset;
use eval::{evaluate_tod_masked, RmseTriple};
use neural::rng::Rng64;
use ovs_core::estimator::matrix_to_tod;
use ovs_core::{EstimatorInput, OvsConfig, OvsTrainer, RecoveryPolicy, Stage, TrainError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Steps between checkpoint anchors inside each sweep run: frequent
/// enough that an injected non-finite loss replays only a short stretch.
const SWEEP_CHECKPOINT_EVERY: usize = 25;

/// One evaluated point of the sweep grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationPoint {
    /// Dropout fraction of this point.
    pub dropout: f64,
    /// Noise sigma (m/s) of this point.
    pub noise_std: f64,
    /// Fraction of speed cells that survived corruption.
    pub observed_fraction: f64,
    /// Masked evaluation of the recovered TOD (`speed` is computed only
    /// over observed cells).
    pub rmse: RmseTriple,
    /// Losses poisoned by training faults during this point's run.
    pub poisoned_losses: usize,
    /// `true` when the run exhausted the retry budget and diverged; the
    /// RMSE fields then hold `NaN`.
    pub diverged: bool,
}

/// The full sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Dataset the sweep ran on.
    pub dataset: String,
    /// Master seed of the plan.
    pub seed: u64,
    /// One entry per grid point, dropout-major order.
    pub points: Vec<DegradationPoint>,
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "degradation of {} (seed {}): {} grid point(s)",
            self.dataset,
            self.seed,
            self.points.len()
        )?;
        writeln!(
            f,
            "{:>8} {:>10} {:>9} {:>10} {:>10} {:>10} {:>7}",
            "dropout", "noise_std", "observed", "rmse_tod", "rmse_vol", "rmse_spd", "status"
        )?;
        for p in &self.points {
            let status = if p.diverged {
                "DIVERGED"
            } else if p.poisoned_losses > 0 {
                "healed"
            } else {
                "ok"
            };
            writeln!(
                f,
                "{:>8.2} {:>10.2} {:>8.1}% {:>10.4} {:>10.4} {:>10.4} {:>7}",
                p.dropout,
                p.noise_std,
                100.0 * p.observed_fraction,
                p.rmse.tod,
                p.rmse.volume,
                p.rmse.speed,
                status
            )?;
        }
        Ok(())
    }
}

/// Runs the sweep. Points are evaluated in deterministic grid order;
/// each point derives its corruption stream from
/// `Rng64::stream_seed(plan.seed, point_index)`, so the report is a pure
/// function of `(dataset, cfg, plan)`.
pub fn degradation_report(
    ds: &Dataset,
    cfg: &OvsConfig,
    plan: &FaultPlan,
) -> roadnet::Result<DegradationReport> {
    let mut points = Vec::new();
    for (idx, (dropout, noise_std)) in grid(plan).into_iter().enumerate() {
        let faults = ObservationFaults {
            dropout,
            noise_std,
            ..plan.observation.clone()
        };
        let point_seed = Rng64::stream_seed(plan.seed, idx as u64);
        let corrupted = corrupt_observation(&ds.observed_speed, &faults, point_seed);
        let imputed = corrupted.imputed();
        let input = EstimatorInput::builder(&ds.net, &ds.ods)
            .interval_s(ds.sim_config.interval_s)
            .sim_seed(ds.sim_config.seed)
            .train(&ds.train)
            .observed_speed(&imputed)
            .build();
        let trainer = OvsTrainer::new(cfg.clone());
        let mut injector = TrainingFaultInjector::new(&plan.training);
        let mut tamper = |stage: Stage, step: usize, loss: &mut f64, norm: &mut f64| {
            injector.tamper(stage, step, loss, norm);
        };
        let mut no_hook = |_cp: &ovs_core::PipelineCheckpoint| Ok(());
        let run = trainer.run_resumable_guarded(
            &input,
            SWEEP_CHECKPOINT_EVERY,
            &mut no_hook,
            None,
            RecoveryPolicy::default(),
            Some(&mut tamper),
        );
        let (rmse, diverged) = match run {
            Ok((mut model, _report)) => {
                let tod = matrix_to_tod(&model.recovered_tod());
                (evaluate_tod_masked(ds, &tod, &corrupted.mask)?, false)
            }
            Err(TrainError::Diverged { .. }) => (
                RmseTriple {
                    tod: f64::NAN,
                    volume: f64::NAN,
                    speed: f64::NAN,
                },
                true,
            ),
            Err(TrainError::Net(e)) => return Err(e),
        };
        points.push(DegradationPoint {
            dropout,
            noise_std,
            observed_fraction: corrupted.observed_fraction(),
            rmse,
            poisoned_losses: injector.injected(),
            diverged,
        });
    }
    Ok(DegradationReport {
        dataset: ds.name.clone(),
        seed: plan.seed,
        points,
    })
}

/// The sweep grid in evaluation order: dropout-major, noise-minor.
fn grid(plan: &FaultPlan) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &d in &plan.sweep.dropouts {
        for &n in &plan.sweep.noise_stds {
            out.push((d, n));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SweepGrid;
    use datagen::dataset::DatasetSpec;
    use datagen::TodPattern;

    fn tiny_ds() -> Dataset {
        let spec = DatasetSpec {
            t: 3,
            interval_s: 120.0,
            train_samples: 3,
            demand_scale: 0.2,
            seed: 9,
        };
        Dataset::synthetic(TodPattern::Gaussian, &spec).unwrap()
    }

    #[test]
    fn sweep_covers_the_grid_and_masks_speed() {
        let ds = tiny_ds();
        let cfg = OvsConfig {
            dropout: 0.0,
            ..OvsConfig::tiny()
        };
        let plan = FaultPlan {
            seed: 4,
            sweep: SweepGrid {
                dropouts: vec![0.0, 0.3],
                noise_stds: vec![0.0],
            },
            ..Default::default()
        };
        let report = degradation_report(&ds, &cfg, &plan).unwrap();
        assert_eq!(report.points.len(), 2);
        let clean = &report.points[0];
        let dropped = &report.points[1];
        assert_eq!(clean.observed_fraction, 1.0);
        assert!(dropped.observed_fraction < 1.0);
        assert!(!clean.diverged && !dropped.diverged);
        assert!(clean.rmse.is_finite() && dropped.rmse.is_finite());
        // The table renders every point.
        let text = report.to_string();
        assert!(text.contains("rmse_spd"), "{text}");
        assert_eq!(text.lines().count(), 2 + report.points.len());
    }

    #[test]
    fn same_plan_reproduces_the_report_bit_exactly() {
        let ds = tiny_ds();
        let cfg = OvsConfig {
            dropout: 0.0,
            ..OvsConfig::tiny()
        };
        let plan = FaultPlan {
            seed: 11,
            sweep: SweepGrid {
                dropouts: vec![0.3],
                noise_stds: vec![0.5],
            },
            ..Default::default()
        };
        let a = degradation_report(&ds, &cfg, &plan).unwrap();
        let b = degradation_report(&ds, &cfg, &plan).unwrap();
        assert_eq!(
            a.points[0].rmse.tod.to_bits(),
            b.points[0].rmse.tod.to_bits()
        );
        assert_eq!(
            a.points[0].rmse.speed.to_bits(),
            b.points[0].rmse.speed.to_bits()
        );
        assert_eq!(a.points[0].observed_fraction, b.points[0].observed_fraction);
    }
}
