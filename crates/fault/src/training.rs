//! Training-layer fault injection: poisoned losses and interrupted
//! checkpoint writes.
//!
//! [`TrainingFaultInjector`] plugs into the trainer's tamper tap
//! (`StageOptions::tamper` / `run_resumable_guarded`) and forces the loss
//! to `NaN` at the planned steps; [`CkptInterrupter`] wraps a
//! checkpoint-write hook and fails it at the planned steps. Both are
//! transient by default — a fault fires once per `(stage, step)`, so the
//! trainer's rollback-and-retry path replays cleanly past it — and
//! persistent on request, which must exhaust the retry budget and
//! surface as `TrainError::Diverged`.

use crate::plan::{StageSel, TrainingFaults};
use obs::global;
use ovs_core::{PipelineCheckpoint, Stage};
use std::collections::BTreeSet;

/// Stable counter: losses poisoned to `NaN` by the injector.
pub const TRAIN_POISONED: &str = "fault_train_poisoned_losses_total";
/// Stable counter: checkpoint writes failed by the interrupter.
pub const TRAIN_CKPT_INTERRUPTS: &str = "fault_train_ckpt_interrupts_total";

fn stage_idx(stage: Stage) -> u8 {
    match stage {
        Stage::V2s => 0,
        Stage::Tod2v => 1,
        Stage::Fit => 2,
    }
}

/// Forces non-finite losses at planned steps via the trainer's tamper tap.
#[derive(Debug, Clone)]
pub struct TrainingFaultInjector {
    stage: StageSel,
    steps: BTreeSet<usize>,
    persistent: bool,
    fired: BTreeSet<(u8, usize)>,
    injected: usize,
}

impl TrainingFaultInjector {
    /// Builds an injector from the plan's training section (only the
    /// `nonfinite_steps` part — checkpoint faults are
    /// [`CkptInterrupter`]'s job).
    pub fn new(faults: &TrainingFaults) -> Self {
        Self {
            stage: faults.stage.unwrap_or(StageSel::Any),
            steps: faults.nonfinite_steps.iter().copied().collect(),
            persistent: faults.persistent,
            fired: BTreeSet::new(),
            injected: 0,
        }
    }

    /// How many losses were poisoned so far.
    pub fn injected(&self) -> usize {
        self.injected
    }

    /// The tamper-tap entry point: pass
    /// `&mut |s, st, l, n| injector.tamper(s, st, l, n)` as
    /// `StageOptions::tamper`. The gradient norm is left untouched — a
    /// non-finite loss alone must trip the guard.
    pub fn tamper(&mut self, stage: Stage, step: usize, loss: &mut f64, _norm: &mut f64) {
        if !self.stage.matches(stage) || !self.steps.contains(&step) {
            return;
        }
        if !self.persistent && !self.fired.insert((stage_idx(stage), step)) {
            return;
        }
        *loss = f64::NAN;
        self.injected += 1;
        global().counter(TRAIN_POISONED).inc();
    }
}

/// Fails checkpoint writes at planned steps, simulating an interrupted
/// write. Wrap the real hook:
///
/// ```ignore
/// let mut interrupter = CkptInterrupter::new(&plan.training);
/// let mut hook = |cp: &PipelineCheckpoint| {
///     interrupter.intercept(cp)?;
///     real_store_write(cp)
/// };
/// ```
#[derive(Debug, Clone)]
pub struct CkptInterrupter {
    stage: StageSel,
    steps: BTreeSet<usize>,
    persistent: bool,
    fired: BTreeSet<(u8, usize)>,
    interrupted: usize,
}

impl CkptInterrupter {
    /// Builds an interrupter from the plan's `ckpt_fail_steps`.
    pub fn new(faults: &TrainingFaults) -> Self {
        Self {
            stage: faults.stage.unwrap_or(StageSel::Any),
            steps: faults.ckpt_fail_steps.iter().copied().collect(),
            persistent: faults.persistent,
            fired: BTreeSet::new(),
            interrupted: 0,
        }
    }

    /// How many writes were interrupted so far.
    pub fn interrupted(&self) -> usize {
        self.interrupted
    }

    /// Returns `Err` when the plan says this write must fail. Call it
    /// before the real write so the simulated interruption prevents the
    /// artifact from landing, exactly like a crash mid-write would.
    pub fn intercept(&mut self, cp: &PipelineCheckpoint) -> roadnet::Result<()> {
        let (stage, step) = (cp.state.stage, cp.state.step);
        if !self.stage.matches(stage) || !self.steps.contains(&step) {
            return Ok(());
        }
        if !self.persistent && !self.fired.insert((stage_idx(stage), step)) {
            return Ok(());
        }
        self.interrupted += 1;
        global().counter(TRAIN_CKPT_INTERRUPTS).inc();
        Err(roadnet::RoadnetError::Internal(format!(
            "injected checkpoint-write interruption at {} step {step}",
            stage.tag()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults(steps: Vec<usize>, persistent: bool) -> TrainingFaults {
        TrainingFaults {
            stage: Some(StageSel::Fit),
            nonfinite_steps: steps.clone(),
            ckpt_fail_steps: steps,
            persistent,
        }
    }

    #[test]
    fn transient_fault_fires_once_per_step() {
        let mut inj = TrainingFaultInjector::new(&faults(vec![3], false));
        let (mut loss, mut norm) = (0.5, 1.0);
        inj.tamper(Stage::Fit, 3, &mut loss, &mut norm);
        assert!(loss.is_nan());
        assert_eq!(norm, 1.0, "gradient norm stays untouched");
        // The rollback replay revisits step 3: the fault must not re-fire.
        loss = 0.5;
        inj.tamper(Stage::Fit, 3, &mut loss, &mut norm);
        assert_eq!(loss, 0.5);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn persistent_fault_fires_every_visit() {
        let mut inj = TrainingFaultInjector::new(&faults(vec![3], true));
        for _ in 0..4 {
            let (mut loss, mut norm) = (0.5, 1.0);
            inj.tamper(Stage::Fit, 3, &mut loss, &mut norm);
            assert!(loss.is_nan());
        }
        assert_eq!(inj.injected(), 4);
    }

    #[test]
    fn stage_and_step_filters_apply() {
        let mut inj = TrainingFaultInjector::new(&faults(vec![3], false));
        let (mut loss, mut norm) = (0.5, 1.0);
        inj.tamper(Stage::V2s, 3, &mut loss, &mut norm);
        inj.tamper(Stage::Fit, 4, &mut loss, &mut norm);
        assert_eq!(loss, 0.5);
        assert_eq!(inj.injected(), 0);
    }
}
