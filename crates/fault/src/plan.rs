//! The fault plan: what to break, where, and under which seed.
//!
//! A [`FaultPlan`] is the single declarative input of the harness. It is
//! loaded from a small TOML subset (flat sections, scalar and
//! one-dimensional array values — exactly what a plan needs, parsed by a
//! ~100-line hand-rolled reader so the crate stays dependency-free) or
//! built in code. Every stochastic decision the plan induces is derived
//! from [`FaultPlan::seed`] through per-index RNG streams, so a plan is a
//! complete, replayable description of an outage scenario.

use crate::network::{IncidentSpec, NetworkFaults};
use simulator::IncidentKind;
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// Which training stage a training fault targets.
///
/// Mirrors [`ovs_core::Stage`] but lives here so plans parse without
/// pulling trainer types into the plan grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageSel {
    /// Stage 1: volume-to-speed pre-training.
    V2s,
    /// Stage 2: TOD-to-volume training.
    Tod2v,
    /// Stage 3: test-time TOD fitting.
    Fit,
    /// Any stage: the step list applies to all three loops.
    Any,
}

impl StageSel {
    /// Parses the plan-file spelling.
    pub fn parse(s: &str) -> Result<Self, PlanError> {
        match s {
            "v2s" => Ok(Self::V2s),
            "tod2v" => Ok(Self::Tod2v),
            "fit" => Ok(Self::Fit),
            "any" => Ok(Self::Any),
            other => Err(PlanError::new(format!(
                "unknown stage '{other}' (expected v2s|tod2v|fit|any)"
            ))),
        }
    }

    /// Does this selector cover the given trainer stage?
    pub fn matches(self, stage: ovs_core::Stage) -> bool {
        matches!(
            (self, stage),
            (Self::Any, _)
                | (Self::V2s, ovs_core::Stage::V2s)
                | (Self::Tod2v, ovs_core::Stage::Tod2v)
                | (Self::Fit, ovs_core::Stage::Fit)
        )
    }
}

/// Layer 1: faults applied to the observed speed tensor before fitting.
///
/// All fields are probabilities per cell or per link in `[0, 1]`, except
/// `noise_std` (additive Gaussian sigma in m/s).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationFaults {
    /// Probability that a `(link, interval)` reading is dropped entirely
    /// (sensor outage — detected, excluded via the mask).
    pub dropout: f64,
    /// Sigma of additive Gaussian noise on surviving readings, in m/s.
    pub noise_std: f64,
    /// Probability that a link's sensor gets *stuck*: from a random onset
    /// interval onward it repeats its last reading. Undetected — the mask
    /// still marks those cells observed.
    pub stuck: f64,
    /// Probability that a surviving reading is corrupted to `NaN`/`Inf`.
    /// Detected by the sanitiser and converted to a masked-out cell.
    pub nonfinite: f64,
}

impl Default for ObservationFaults {
    fn default() -> Self {
        Self {
            dropout: 0.0,
            noise_std: 0.0,
            stuck: 0.0,
            nonfinite: 0.0,
        }
    }
}

impl ObservationFaults {
    /// Is any observation fault actually enabled?
    pub fn is_active(&self) -> bool {
        self.dropout > 0.0 || self.noise_std > 0.0 || self.stuck > 0.0 || self.nonfinite > 0.0
    }

    fn validate(&self) -> Result<(), PlanError> {
        for (name, p) in [
            ("dropout", self.dropout),
            ("stuck", self.stuck),
            ("nonfinite", self.nonfinite),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(PlanError::new(format!(
                    "observation.{name} = {p} is not a probability in [0, 1]"
                )));
            }
        }
        if !self.noise_std.is_finite() || self.noise_std < 0.0 {
            return Err(PlanError::new(format!(
                "observation.noise_std = {} must be finite and >= 0",
                self.noise_std
            )));
        }
        Ok(())
    }
}

/// Layer 2: faults injected into the training loops.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingFaults {
    /// Which stage the step lists refer to (`None` = any stage).
    pub stage: Option<StageSel>,
    /// Steps at which the loss is forced to `NaN` after the real update
    /// computed it (simulating a numeric blow-up).
    pub nonfinite_steps: Vec<usize>,
    /// Steps at which the checkpoint-write hook is made to fail
    /// (simulating an interrupted write).
    pub ckpt_fail_steps: Vec<usize>,
    /// `false` (default): each listed fault fires once — a transient
    /// fault the rollback retry replays past. `true`: the fault fires on
    /// every visit to the step — a persistent fault that must exhaust the
    /// retry budget and surface as `TrainError::Diverged`.
    pub persistent: bool,
}

impl TrainingFaults {
    /// Is any training fault actually enabled?
    pub fn is_active(&self) -> bool {
        !self.nonfinite_steps.is_empty() || !self.ckpt_fail_steps.is_empty()
    }
}

/// Layer 3: faults applied to checkpoint artifacts at rest.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StorageFaults {
    /// Number of single-bit flips applied at seeded positions within the
    /// payload region of the artifact file.
    pub bit_flips: u32,
    /// Bytes chopped off the end of the file (0 = no truncation).
    pub truncate_bytes: u64,
}

impl StorageFaults {
    /// Is any storage fault actually enabled?
    pub fn is_active(&self) -> bool {
        self.bit_flips > 0 || self.truncate_bytes > 0
    }
}

/// The degradation-sweep grid: the cartesian product of these two axes is
/// evaluated by [`crate::report::degradation_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Dropout fractions to sweep.
    pub dropouts: Vec<f64>,
    /// Noise sigmas (m/s) to sweep.
    pub noise_stds: Vec<f64>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self {
            dropouts: vec![0.0, 0.1, 0.3],
            noise_stds: vec![0.0],
        }
    }
}

/// A complete, seeded fault scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Master seed: every injected fault derives from per-index streams
    /// of this value, so the whole scenario replays bit-exactly.
    pub seed: u64,
    /// Observation-layer faults.
    pub observation: ObservationFaults,
    /// Training-layer faults.
    pub training: TrainingFaults,
    /// Storage-layer faults.
    pub storage: StorageFaults,
    /// Network-layer faults: the declarative incident timeline and the
    /// incident-sweep template.
    pub network: NetworkFaults,
    /// Degradation-sweep axes.
    pub sweep: SweepGrid,
}

/// A plan-file parse or validation failure, with a line number (and a
/// column when the failure points at a specific token) when the failure
/// is tied to one.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line of the offending statement, if known.
    pub line: Option<usize>,
    /// 1-based column of the offending token within that line, if known.
    pub column: Option<usize>,
}

impl PlanError {
    pub(crate) fn new(message: String) -> Self {
        Self {
            message,
            line: None,
            column: None,
        }
    }

    pub(crate) fn at(line: usize, message: String) -> Self {
        Self {
            message,
            line: Some(line),
            column: None,
        }
    }

    /// Attaches a column span if one is not already present.
    fn spanned(mut self, column: Option<usize>) -> Self {
        if self.column.is_none() {
            self.column = column;
        }
        self
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (Some(n), Some(c)) => write!(f, "fault plan line {n}, col {c}: {}", self.message),
            (Some(n), None) => write!(f, "fault plan line {n}: {}", self.message),
            _ => write!(f, "fault plan: {}", self.message),
        }
    }
}

impl std::error::Error for PlanError {}

/// One parsed right-hand side of the TOML subset.
enum Value {
    Num(f64),
    Bool(bool),
    Str(String),
    Array(Vec<f64>),
}

impl Value {
    fn parse(raw: &str, line: usize) -> Result<Self, PlanError> {
        let raw = raw.trim();
        if raw == "true" {
            return Ok(Self::Bool(true));
        }
        if raw == "false" {
            return Ok(Self::Bool(false));
        }
        if let Some(inner) = raw.strip_prefix('[') {
            let Some(inner) = inner.strip_suffix(']') else {
                return Err(PlanError::at(line, format!("unterminated array '{raw}'")));
            };
            let mut out = Vec::new();
            for item in inner.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                out.push(item.parse::<f64>().map_err(|_| {
                    PlanError::at(line, format!("array element '{item}' is not a number"))
                })?);
            }
            return Ok(Self::Array(out));
        }
        if let Some(inner) = raw.strip_prefix('"') {
            let Some(inner) = inner.strip_suffix('"') else {
                return Err(PlanError::at(line, format!("unterminated string {raw}")));
            };
            return Ok(Self::Str(inner.to_string()));
        }
        raw.parse::<f64>()
            .map(Self::Num)
            .map_err(|_| PlanError::at(line, format!("cannot parse value '{raw}'")))
    }

    fn num(&self, key: &str, line: usize) -> Result<f64, PlanError> {
        match self {
            Self::Num(v) => Ok(*v),
            _ => Err(PlanError::at(line, format!("{key} expects a number"))),
        }
    }

    fn uint(&self, key: &str, line: usize) -> Result<u64, PlanError> {
        let v = self.num(key, line)?;
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return Err(PlanError::at(
                line,
                format!("{key} expects a non-negative integer, got {v}"),
            ));
        }
        Ok(v as u64)
    }

    fn boolean(&self, key: &str, line: usize) -> Result<bool, PlanError> {
        match self {
            Self::Bool(b) => Ok(*b),
            _ => Err(PlanError::at(line, format!("{key} expects true/false"))),
        }
    }

    fn string(&self, key: &str, line: usize) -> Result<&str, PlanError> {
        match self {
            Self::Str(s) => Ok(s),
            _ => Err(PlanError::at(line, format!("{key} expects a string"))),
        }
    }

    fn array(&self, key: &str, line: usize) -> Result<&[f64], PlanError> {
        match self {
            Self::Array(v) => Ok(v),
            _ => Err(PlanError::at(line, format!("{key} expects an array"))),
        }
    }

    /// An array of positive integer tick counts, order preserved.
    fn tick_list(&self, key: &str, line: usize) -> Result<Vec<u64>, PlanError> {
        let mut out = Vec::new();
        for &v in self.array(key, line)? {
            if v < 1.0 || v.fract() != 0.0 {
                return Err(PlanError::at(
                    line,
                    format!("{key} expects positive integer tick counts, got {v}"),
                ));
            }
            out.push(v as u64);
        }
        Ok(out)
    }

    fn step_list(&self, key: &str, line: usize) -> Result<Vec<usize>, PlanError> {
        let mut out = BTreeSet::new();
        for &v in self.array(key, line)? {
            if v < 0.0 || v.fract() != 0.0 {
                return Err(PlanError::at(
                    line,
                    format!("{key} expects non-negative integer steps, got {v}"),
                ));
            }
            out.insert(v as usize);
        }
        Ok(out.into_iter().collect())
    }
}

impl FaultPlan {
    /// Parses the TOML-subset plan grammar. Unknown sections and keys are
    /// rejected so a typo cannot silently disable a fault.
    pub fn parse(text: &str) -> Result<Self, PlanError> {
        let mut plan = Self::default();
        let mut section = String::new();
        let mut drafts: Vec<IncidentDraft> = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            // A '#' inside a quoted string would be cut too; plan
            // strings (`training.stage`, `network.kind`) never contain one.
            let line = raw_line.split('#').next().unwrap_or_default().trim();
            if line.is_empty() {
                continue;
            }
            // Array-of-tables: each [[network.incident]] opens a fresh
            // incident whose keys follow until the next section header.
            if let Some(name) = line.strip_prefix("[[") {
                let Some(name) = name.strip_suffix("]]") else {
                    return Err(PlanError::at(
                        line_no,
                        format!("malformed array section '{line}'"),
                    ));
                };
                let name = name.trim();
                if name != "network.incident" {
                    return Err(PlanError::at(
                        line_no,
                        format!("unknown array section [[{name}]]"),
                    )
                    .spanned(column_of(raw_line, name)));
                }
                drafts.push(IncidentDraft::new(line_no));
                section = "network.incident".to_string();
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(PlanError::at(
                        line_no,
                        format!("malformed section '{line}'"),
                    ));
                };
                let name = name.trim();
                match name {
                    "observation" | "training" | "storage" | "sweep" | "network" => {
                        section = name.to_string();
                    }
                    other => {
                        return Err(PlanError::at(line_no, format!("unknown section [{other}]"))
                            .spanned(column_of(raw_line, other)));
                    }
                }
                continue;
            }
            let Some((key, raw_value)) = line.split_once('=') else {
                return Err(PlanError::at(
                    line_no,
                    format!("expected 'key = value', got '{line}'"),
                ));
            };
            let key = key.trim();
            let value = Value::parse(raw_value, line_no)?;
            let applied = if section == "network.incident" {
                match drafts.last_mut() {
                    Some(draft) => draft.apply(key, &value, line_no),
                    None => Err(PlanError::at(
                        line_no,
                        "incident key outside a [[network.incident]] section".to_string(),
                    )),
                }
            } else {
                plan.apply(&section, key, &value, line_no)
            };
            applied.map_err(|e| e.spanned(column_of(raw_line, key)))?;
        }
        for draft in drafts {
            plan.network.incidents.push(draft.finish()?);
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Reads and parses a plan file.
    pub fn from_file(path: &Path) -> Result<Self, PlanError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| PlanError::new(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    fn apply(
        &mut self,
        section: &str,
        key: &str,
        value: &Value,
        line: usize,
    ) -> Result<(), PlanError> {
        match (section, key) {
            ("", "seed") => self.seed = value.uint("seed", line)?,
            ("observation", "dropout") => self.observation.dropout = value.num(key, line)?,
            ("observation", "noise_std") => self.observation.noise_std = value.num(key, line)?,
            ("observation", "stuck") => self.observation.stuck = value.num(key, line)?,
            ("observation", "nonfinite") => self.observation.nonfinite = value.num(key, line)?,
            ("training", "stage") => {
                self.training.stage = Some(StageSel::parse(value.string(key, line)?)?);
            }
            ("training", "nonfinite_steps") => {
                self.training.nonfinite_steps = value.step_list(key, line)?;
            }
            ("training", "ckpt_fail_steps") => {
                self.training.ckpt_fail_steps = value.step_list(key, line)?;
            }
            ("training", "persistent") => self.training.persistent = value.boolean(key, line)?,
            ("storage", "bit_flips") => {
                self.storage.bit_flips = value.uint(key, line)?.min(u32::MAX as u64) as u32;
            }
            ("storage", "truncate_bytes") => {
                self.storage.truncate_bytes = value.uint(key, line)?;
            }
            ("sweep", "dropouts") => self.sweep.dropouts = value.array(key, line)?.to_vec(),
            ("sweep", "noise_stds") => self.sweep.noise_stds = value.array(key, line)?.to_vec(),
            ("network", "kind") => {
                self.network.sweep.kind = parse_kind(value.string(key, line)?, line)?;
            }
            ("network", "target_link") => {
                self.network.sweep.target_link = value.uint(key, line)?;
            }
            ("network", "onset_tick") => {
                self.network.sweep.onset_tick = value.uint(key, line)?;
            }
            ("network", "sweep_severities") => {
                self.network.sweep.severities = value.array(key, line)?.to_vec();
            }
            ("network", "sweep_durations") => {
                self.network.sweep.duration_ticks = value.tick_list(key, line)?;
            }
            _ => {
                let place = if section.is_empty() {
                    "top level".to_string()
                } else {
                    format!("section [{section}]")
                };
                return Err(PlanError::at(
                    line,
                    format!("unknown key '{key}' in {place}"),
                ));
            }
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), PlanError> {
        self.observation.validate()?;
        for &d in &self.sweep.dropouts {
            if !(0.0..=1.0).contains(&d) {
                return Err(PlanError::new(format!(
                    "sweep.dropouts entry {d} is not a probability in [0, 1]"
                )));
            }
        }
        for &n in &self.sweep.noise_stds {
            if !n.is_finite() || n < 0.0 {
                return Err(PlanError::new(format!(
                    "sweep.noise_stds entry {n} must be finite and >= 0"
                )));
            }
        }
        if self.sweep.dropouts.is_empty() || self.sweep.noise_stds.is_empty() {
            return Err(PlanError::new(
                "sweep axes must be non-empty (use [0.0] to pin an axis)".to_string(),
            ));
        }
        self.network.validate()?;
        Ok(())
    }
}

fn parse_kind(s: &str, line: usize) -> Result<IncidentKind, PlanError> {
    IncidentKind::parse(s).ok_or_else(|| {
        PlanError::at(
            line,
            format!("unknown incident kind '{s}' (expected closure|capacity_drop|signal_outage)"),
        )
    })
}

/// 1-based column of `token` within `raw_line`, for spanned errors.
fn column_of(raw_line: &str, token: &str) -> Option<usize> {
    raw_line.find(token).map(|i| i + 1)
}

/// Accumulates one `[[network.incident]]` section during parsing; the
/// required-field checks run in [`IncidentDraft::finish`] once the section
/// is complete.
struct IncidentDraft {
    line: usize,
    kind: Option<IncidentKind>,
    link: Option<u64>,
    node: Option<u64>,
    onset_tick: u64,
    duration_ticks: Option<u64>,
    severity: Option<f64>,
}

impl IncidentDraft {
    fn new(line: usize) -> Self {
        Self {
            line,
            kind: None,
            link: None,
            node: None,
            onset_tick: 0,
            duration_ticks: None,
            severity: None,
        }
    }

    fn apply(&mut self, key: &str, value: &Value, line: usize) -> Result<(), PlanError> {
        match key {
            "kind" => self.kind = Some(parse_kind(value.string(key, line)?, line)?),
            "link" => self.link = Some(value.uint(key, line)?),
            "node" => self.node = Some(value.uint(key, line)?),
            "onset_tick" => self.onset_tick = value.uint(key, line)?,
            "duration_ticks" => self.duration_ticks = Some(value.uint(key, line)?),
            "severity" => self.severity = Some(value.num(key, line)?),
            other => {
                return Err(PlanError::at(
                    line,
                    format!("unknown key '{other}' in [[network.incident]]"),
                ));
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<IncidentSpec, PlanError> {
        let Some(kind) = self.kind else {
            return Err(PlanError::at(
                self.line,
                "[[network.incident]] requires an explicit kind".to_string(),
            ));
        };
        let Some(duration_ticks) = self.duration_ticks else {
            return Err(PlanError::at(
                self.line,
                "[[network.incident]] requires duration_ticks".to_string(),
            ));
        };
        let Some(severity) = self.severity else {
            return Err(PlanError::at(
                self.line,
                "[[network.incident]] requires severity".to_string(),
            ));
        };
        let spec = IncidentSpec {
            kind,
            link: self.link,
            node: self.node,
            onset_tick: self.onset_tick,
            duration_ticks,
            severity,
        };
        spec.validate().map_err(|e| PlanError {
            line: e.line.or(Some(self.line)),
            ..e
        })?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# demo plan
seed = 42

[observation]
dropout = 0.3
noise_std = 0.5
stuck = 0.05
nonfinite = 0.01

[training]
stage = "fit"
nonfinite_steps = [12, 3]
ckpt_fail_steps = [20]
persistent = false

[storage]
bit_flips = 3
truncate_bytes = 0

[sweep]
dropouts = [0.0, 0.1, 0.3, 0.5]
noise_stds = [0.0, 0.5]

[network]
kind = "capacity_drop"
target_link = 7
onset_tick = 60
sweep_severities = [0.3, 0.9]
sweep_durations = [30, 120]

[[network.incident]]
kind = "closure"
link = 4
onset_tick = 120
duration_ticks = 240
severity = 1.0

[[network.incident]]
kind = "signal_outage"
node = 2
onset_tick = 30
duration_ticks = 60
severity = 0.8
"#;

    #[test]
    fn parses_the_full_grammar() {
        let plan = FaultPlan::parse(FULL).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.observation.dropout, 0.3);
        assert_eq!(plan.observation.noise_std, 0.5);
        assert_eq!(plan.training.stage, Some(StageSel::Fit));
        // Step lists are sorted and deduplicated.
        assert_eq!(plan.training.nonfinite_steps, vec![3, 12]);
        assert_eq!(plan.training.ckpt_fail_steps, vec![20]);
        assert!(!plan.training.persistent);
        assert_eq!(plan.storage.bit_flips, 3);
        assert_eq!(plan.sweep.dropouts.len(), 4);
        assert!(plan.observation.is_active());
        assert!(plan.training.is_active());
        assert!(plan.storage.is_active());
        assert!(plan.network.is_active());
        assert_eq!(plan.network.sweep.kind, IncidentKind::CapacityDrop);
        assert_eq!(plan.network.sweep.target_link, 7);
        assert_eq!(plan.network.sweep.severities, vec![0.3, 0.9]);
        assert_eq!(plan.network.sweep.duration_ticks, vec![30, 120]);
        assert_eq!(plan.network.incidents.len(), 2);
        assert_eq!(plan.network.incidents[0].kind, IncidentKind::Closure);
        assert_eq!(plan.network.incidents[0].link, Some(4));
        assert_eq!(plan.network.incidents[1].node, Some(2));
        // The timeline converts into a sorted simulator schedule.
        let sched = plan.network.schedule().unwrap();
        assert_eq!(sched.len(), 2);
        assert_eq!(sched.incidents()[0].onset_tick, 30);
    }

    #[test]
    fn incident_sections_require_kind_target_duration_severity() {
        let err = FaultPlan::parse(
            "[[network.incident]]\nlink = 1\nduration_ticks = 5\nseverity = 0.5\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("explicit kind"), "{err}");
        assert_eq!(err.line, Some(1));
        let err = FaultPlan::parse(
            "[[network.incident]]\nkind = \"closure\"\nduration_ticks = 5\nseverity = 0.5\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("link/node"), "{err}");
        let err = FaultPlan::parse(
            "[[network.incident]]\nkind = \"closure\"\nlink = 1\nnode = 2\nduration_ticks = 5\nseverity = 0.5\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
        let err = FaultPlan::parse(
            "[[network.incident]]\nkind = \"closure\"\nlink = 1\nseverity = 0.5\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duration_ticks"), "{err}");
        let err = FaultPlan::parse(
            "[[network.incident]]\nkind = \"closure\"\nlink = 1\nduration_ticks = 5\nseverity = 1.5\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("(0, 1]"), "{err}");
    }

    #[test]
    fn unknown_incident_keys_and_kinds_are_spanned() {
        let err = FaultPlan::parse("[[network.incident]]\nkind = \"closure\"\n  severety = 0.5\n")
            .unwrap_err();
        assert_eq!(err.line, Some(3));
        // Column points at the typo'd key, past the indentation.
        assert_eq!(err.column, Some(3));
        assert!(err.to_string().contains("col 3"), "{err}");
        let err = FaultPlan::parse("[[network.incident]]\nkind = \"flood\"\n").unwrap_err();
        assert!(err.to_string().contains("unknown incident kind"), "{err}");
        let err = FaultPlan::parse("[[network.accident]]\n").unwrap_err();
        assert!(err.to_string().contains("unknown array section"), "{err}");
        assert_eq!(err.column, Some(3));
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::parse("seed = 1\n").unwrap();
        assert!(!plan.observation.is_active());
        assert!(!plan.training.is_active());
        assert!(!plan.storage.is_active());
    }

    #[test]
    fn unknown_keys_are_rejected_with_line_numbers() {
        let err = FaultPlan::parse("seed = 1\n[observation]\ndropuot = 0.3\n").unwrap_err();
        assert_eq!(err.line, Some(3));
        assert!(err.to_string().contains("dropuot"), "{err}");
        let err = FaultPlan::parse("[weather]\nrain = 1.0\n").unwrap_err();
        assert!(err.to_string().contains("unknown section"), "{err}");
    }

    #[test]
    fn out_of_range_probabilities_are_rejected() {
        let err = FaultPlan::parse("[observation]\ndropout = 1.5\n").unwrap_err();
        assert!(err.to_string().contains("probability"), "{err}");
        let err = FaultPlan::parse("[sweep]\ndropouts = []\nnoise_stds = [0.0]\n").unwrap_err();
        assert!(err.to_string().contains("non-empty"), "{err}");
    }

    #[test]
    fn stage_selector_matches_trainer_stages() {
        assert!(StageSel::Any.matches(ovs_core::Stage::V2s));
        assert!(StageSel::Fit.matches(ovs_core::Stage::Fit));
        assert!(!StageSel::Fit.matches(ovs_core::Stage::V2s));
        assert!(StageSel::parse("bogus").is_err());
    }
}
