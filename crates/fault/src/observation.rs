//! Observation-layer fault injection: corrupting the speed tensor.
//!
//! [`corrupt_observation`] applies the plan's sensor faults to a clean
//! `links x T` speed tensor and returns the corrupted tensor together
//! with an observation mask and per-kind counts. Each link draws from its
//! own RNG stream (`Rng64::for_index(seed, link)`), and links are
//! processed independently, so the result is **bit-identical for every
//! worker-thread count** — the same contract the data-generation layer
//! keeps.

use crate::plan::ObservationFaults;
use neural::rng::Rng64;
use obs::global;
use rayon::prelude::*;
use roadnet::LinkTensor;

/// Stable counters: cells dropped, links stuck, cells corrupted to
/// non-finite values, and noisy cells, across all `corrupt_observation`
/// calls in this process.
pub const OBS_DROPPED: &str = "fault_obs_dropped_cells_total";
/// See [`OBS_DROPPED`].
pub const OBS_STUCK: &str = "fault_obs_stuck_links_total";
/// See [`OBS_DROPPED`].
pub const OBS_NONFINITE: &str = "fault_obs_nonfinite_cells_total";
/// See [`OBS_DROPPED`].
pub const OBS_NOISY: &str = "fault_obs_noisy_cells_total";

/// Per-kind injection counts of one corruption pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObservationStats {
    /// Cells dropped by sensor outage (masked out).
    pub dropped_cells: usize,
    /// Links whose sensor froze at some onset interval.
    pub stuck_links: usize,
    /// Cells corrupted to `NaN`/`Inf`, then sanitised and masked out.
    pub nonfinite_cells: usize,
    /// Cells that received additive Gaussian noise.
    pub noisy_cells: usize,
}

/// A corrupted speed tensor plus everything needed to handle it honestly.
#[derive(Debug, Clone)]
pub struct CorruptedObservation {
    /// The corrupted tensor. Non-finite injections are already sanitised
    /// to `0.0` so downstream tensor code never sees `NaN`; the mask is
    /// the source of truth for which cells are usable.
    pub speed: LinkTensor,
    /// Row-major `links x T` observation mask: `true` = the reading is
    /// present and trusted (stuck readings stay `true` — staleness is
    /// undetectable at the sensor level).
    pub mask: Vec<bool>,
    /// Per-kind injection counts.
    pub stats: ObservationStats,
}

impl CorruptedObservation {
    /// Fraction of cells still observed.
    pub fn observed_fraction(&self) -> f64 {
        if self.mask.is_empty() {
            return 1.0;
        }
        self.mask.iter().filter(|&&m| m).count() as f64 / self.mask.len() as f64
    }

    /// Fills masked-out cells with the link's mean observed speed (or the
    /// tensor-wide mean if a link lost every reading), producing the
    /// finite, fully-populated tensor the fitting pipeline consumes.
    /// Evaluation must still use [`CorruptedObservation::mask`] — imputed
    /// cells are guesses, not observations.
    pub fn imputed(&self) -> LinkTensor {
        let (rows, t) = (self.speed.rows(), self.speed.num_intervals());
        let src = self.speed.as_slice();
        let mut global_sum = 0.0;
        let mut global_n = 0usize;
        for (&v, &m) in src.iter().zip(&self.mask) {
            if m {
                global_sum += v;
                global_n += 1;
            }
        }
        let global_mean = if global_n > 0 {
            global_sum / global_n as f64
        } else {
            0.0
        };
        let mut data = src.to_vec();
        let link_rows = src
            .chunks_exact(t.max(1))
            .zip(self.mask.chunks_exact(t.max(1)))
            .zip(data.chunks_exact_mut(t.max(1)));
        for ((row_src, row_mask), row_out) in link_rows {
            let mut sum = 0.0;
            let mut n = 0usize;
            for (&v, &m) in row_src.iter().zip(row_mask) {
                if m {
                    sum += v;
                    n += 1;
                }
            }
            let fill = if n > 0 { sum / n as f64 } else { global_mean };
            for (v, &m) in row_out.iter_mut().zip(row_mask) {
                if !m {
                    *v = fill;
                }
            }
        }
        // lint: allow(panic) — data is a copy of the source tensor's
        // buffer, so rows x t is its exact shape
        LinkTensor::from_data(rows, t, data).expect("imputed tensor keeps the source shape")
    }
}

/// Per-link corruption: value row, mask row, and local counts.
struct LinkOutcome {
    values: Vec<f64>,
    mask: Vec<bool>,
    stats: ObservationStats,
}

fn corrupt_link(clean_row: &[f64], faults: &ObservationFaults, mut rng: Rng64) -> LinkOutcome {
    let t = clean_row.len();
    let mut values = clean_row.to_vec();
    let mut mask = vec![true; t];
    let mut stats = ObservationStats::default();

    // The draw order below is part of the determinism contract: stuck
    // decision + onset first, then per cell dropout, non-finite, noise.
    let is_stuck = rng.uniform() < faults.stuck;
    let onset = rng.index(t.max(1));
    if is_stuck {
        if let Some(&frozen) = clean_row.get(onset) {
            stats.stuck_links = 1;
            for v in values.iter_mut().skip(onset) {
                *v = frozen;
            }
        }
    }

    for (v, m) in values.iter_mut().zip(mask.iter_mut()) {
        let drop_u = rng.uniform();
        let nonfinite_u = rng.uniform();
        let noise = rng.normal();
        if drop_u < faults.dropout {
            stats.dropped_cells += 1;
            *m = false;
            *v = 0.0;
        } else if nonfinite_u < faults.nonfinite {
            // The injected value would be NaN or Inf; the sanitiser
            // detects it immediately, so the surviving artifact is a
            // masked-out zero plus a counter increment.
            stats.nonfinite_cells += 1;
            *m = false;
            *v = 0.0;
        } else if faults.noise_std > 0.0 {
            stats.noisy_cells += 1;
            *v = (*v + faults.noise_std * noise).max(0.0);
        }
    }
    LinkOutcome {
        values,
        mask,
        stats,
    }
}

/// Applies observation faults to a clean speed tensor.
///
/// Deterministic in `(clean, faults, seed)` and bit-identical across
/// worker-thread counts: link `j` always consumes stream
/// `Rng64::for_index(seed, j)` regardless of which thread processes it.
pub fn corrupt_observation(
    clean: &LinkTensor,
    faults: &ObservationFaults,
    seed: u64,
) -> CorruptedObservation {
    let (rows, t) = (clean.rows(), clean.num_intervals());
    let src = clean.as_slice();
    let outcomes: Vec<LinkOutcome> = (0..rows)
        .into_par_iter()
        .map(|j| {
            let rng = Rng64::for_index(seed, j as u64);
            let row = src.get(j * t..(j + 1) * t).unwrap_or_default();
            corrupt_link(row, faults, rng)
        })
        .collect();

    let mut data = Vec::with_capacity(rows * t);
    let mut mask = Vec::with_capacity(rows * t);
    let mut stats = ObservationStats::default();
    for o in outcomes {
        data.extend_from_slice(&o.values);
        mask.extend_from_slice(&o.mask);
        stats.dropped_cells += o.stats.dropped_cells;
        stats.stuck_links += o.stats.stuck_links;
        stats.nonfinite_cells += o.stats.nonfinite_cells;
        stats.noisy_cells += o.stats.noisy_cells;
    }
    let reg = global();
    reg.counter(OBS_DROPPED).add(stats.dropped_cells as u64);
    reg.counter(OBS_STUCK).add(stats.stuck_links as u64);
    reg.counter(OBS_NONFINITE).add(stats.nonfinite_cells as u64);
    reg.counter(OBS_NOISY).add(stats.noisy_cells as u64);
    CorruptedObservation {
        // lint: allow(panic) — every outcome row is t long, so the
        // reassembled buffer is exactly rows x t
        speed: LinkTensor::from_data(rows, t, data).expect("corruption keeps the source shape"),
        mask,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ObservationFaults;

    fn clean(rows: usize, t: usize) -> LinkTensor {
        let data: Vec<f64> = (0..rows * t).map(|i| 5.0 + (i % 7) as f64).collect();
        LinkTensor::from_data(rows, t, data).unwrap()
    }

    #[test]
    fn inert_faults_leave_the_tensor_untouched() {
        let c = clean(4, 6);
        let out = corrupt_observation(&c, &ObservationFaults::default(), 9);
        assert_eq!(out.speed.as_slice(), c.as_slice());
        assert!(out.mask.iter().all(|&m| m));
        assert_eq!(out.stats, ObservationStats::default());
        assert_eq!(out.observed_fraction(), 1.0);
    }

    #[test]
    fn dropout_masks_cells_and_counts_them() {
        let c = clean(20, 10);
        let faults = ObservationFaults {
            dropout: 0.4,
            ..Default::default()
        };
        let out = corrupt_observation(&c, &faults, 3);
        let masked = out.mask.iter().filter(|&&m| !m).count();
        assert_eq!(masked, out.stats.dropped_cells);
        assert!(masked > 0, "40% dropout on 200 cells must drop something");
        // Dropped cells are sanitised, not NaN.
        assert!(out.speed.as_slice().iter().all(|v| v.is_finite()));
        assert!(out.observed_fraction() < 1.0);
    }

    #[test]
    fn same_seed_reproduces_bit_exactly_and_seeds_differ() {
        let c = clean(12, 8);
        let faults = ObservationFaults {
            dropout: 0.2,
            noise_std: 0.7,
            stuck: 0.3,
            nonfinite: 0.05,
        };
        let a = corrupt_observation(&c, &faults, 11);
        let b = corrupt_observation(&c, &faults, 11);
        assert_eq!(a.speed.as_slice(), b.speed.as_slice());
        assert_eq!(a.mask, b.mask);
        assert_eq!(a.stats, b.stats);
        let other = corrupt_observation(&c, &faults, 12);
        assert_ne!(a.speed.as_slice(), other.speed.as_slice());
    }

    #[test]
    fn stuck_links_repeat_the_onset_reading_but_stay_masked_in() {
        let c = clean(50, 6);
        let faults = ObservationFaults {
            stuck: 1.0,
            ..Default::default()
        };
        let out = corrupt_observation(&c, &faults, 5);
        assert_eq!(out.stats.stuck_links, 50);
        // Staleness is undetected: everything still reads as observed.
        assert!(out.mask.iter().all(|&m| m));
        let (t, s) = (6, out.speed.as_slice());
        for j in 0..50 {
            let row = &s[j * t..(j + 1) * t];
            let last = row[t - 1];
            // The tail of every row is constant from the onset on.
            assert!(row.iter().rev().take_while(|&&v| v == last).count() >= 1);
        }
    }

    #[test]
    fn imputed_fills_masked_cells_with_link_means() {
        let c = LinkTensor::from_data(2, 3, vec![10.0, 20.0, 30.0, 7.0, 7.0, 7.0]).unwrap();
        let out = CorruptedObservation {
            speed: LinkTensor::from_data(2, 3, vec![10.0, 0.0, 30.0, 0.0, 0.0, 0.0]).unwrap(),
            mask: vec![true, false, true, false, false, false],
            stats: ObservationStats::default(),
        };
        let imp = out.imputed();
        // Link 0 mean over observed cells = (10 + 30) / 2.
        assert_eq!(imp.as_slice()[1], 20.0);
        // Link 1 lost everything: falls back to the global observed mean.
        assert_eq!(imp.as_slice()[3], 20.0);
        // Observed cells are untouched.
        assert_eq!(imp.as_slice()[0], 10.0);
        assert_eq!(imp.as_slice()[2], 30.0);
        let _ = c;
    }

    #[test]
    fn noise_perturbs_but_never_goes_negative() {
        let c = clean(10, 10);
        let faults = ObservationFaults {
            noise_std: 50.0,
            ..Default::default()
        };
        let out = corrupt_observation(&c, &faults, 2);
        assert_eq!(out.stats.noisy_cells, 100);
        assert!(out.speed.as_slice().iter().all(|&v| v >= 0.0));
        assert_ne!(out.speed.as_slice(), c.as_slice());
    }
}
