//! Layer 4: network faults — a seeded, declarative incident timeline.
//!
//! Where the observation layer corrupts what the sensors *report*, the
//! network layer perturbs what the network *is*: road closures, incidents
//! that cut a link's discharge capacity, and signal-controller outages.
//! The plan grammar grows `[[network.incident]]` array-of-table sections,
//! each one scheduled incident, plus a `[network]` sweep section whose
//! severity × duration grid drives the incident-sweep mode of
//! `cityod faults run`.
//!
//! The timeline is purely declarative: every effect is a function of
//! `(schedule, tick)` inside [`simulator`], so a plan replays the same
//! degradation bit-identically at any worker-thread count — the same
//! property the other three layers guarantee through seeded RNG streams,
//! achieved here with no randomness at all.

use crate::plan::PlanError;
use simulator::{IncidentKind, IncidentSchedule, IncidentTarget, ScheduledIncident};

/// One declarative incident from a `[[network.incident]]` section.
///
/// Targets are raw indices (validated against the actual network by
/// [`simulator::IncidentSchedule::validate`] when the schedule is bound to
/// a run); exactly one of `link` / `node` must be set.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentSpec {
    /// What kind of perturbation this is.
    pub kind: IncidentKind,
    /// Target link index (`closure` / `capacity_drop`, or a single
    /// approach of a signal outage).
    pub link: Option<u64>,
    /// Target node index: the incident applies to every inbound approach
    /// of the intersection.
    pub node: Option<u64>,
    /// First simulation tick at which the incident is in force.
    pub onset_tick: u64,
    /// Number of ticks the incident lasts (half-open interval).
    pub duration_ticks: u64,
    /// Severity in `(0, 1]`: fraction of capacity/saturation flow removed,
    /// or for signal outages `>= 0.5` means all-red (else phase-stuck).
    pub severity: f64,
}

impl IncidentSpec {
    /// Plan-level validation: exactly one target, positive duration,
    /// severity in `(0, 1]`. Index-range checks happen when the schedule
    /// meets a concrete network.
    pub fn validate(&self) -> Result<(), PlanError> {
        match (self.link, self.node) {
            (Some(_), Some(_)) => {
                return Err(PlanError::new(
                    "network.incident: set exactly one of link/node, not both".to_string(),
                ));
            }
            (None, None) => {
                return Err(PlanError::new(
                    "network.incident: one of link/node is required".to_string(),
                ));
            }
            _ => {}
        }
        if self.duration_ticks == 0 {
            return Err(PlanError::new(
                "network.incident: duration_ticks must be >= 1".to_string(),
            ));
        }
        if !(self.severity > 0.0 && self.severity <= 1.0) {
            return Err(PlanError::new(format!(
                "network.incident: severity {} is not in (0, 1]",
                self.severity
            )));
        }
        Ok(())
    }

    fn scheduled(&self) -> Result<ScheduledIncident, PlanError> {
        let target = match (self.link, self.node) {
            (Some(l), None) => IncidentTarget::Link(roadnet::LinkId(l as usize)),
            (None, Some(n)) => IncidentTarget::Node(roadnet::NodeId(n as usize)),
            _ => {
                return Err(PlanError::new(
                    "network.incident: exactly one of link/node is required".to_string(),
                ));
            }
        };
        Ok(ScheduledIncident {
            kind: self.kind,
            target,
            onset_tick: self.onset_tick,
            duration_ticks: self.duration_ticks,
            severity: self.severity,
        })
    }
}

/// The `[network]` sweep axes: one incident template evaluated over the
/// cartesian product of severities × durations. An empty axis disables the
/// sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentSweep {
    /// Incident kind swept over the grid.
    pub kind: IncidentKind,
    /// Link the template incident targets.
    pub target_link: u64,
    /// Onset tick shared by every grid point.
    pub onset_tick: u64,
    /// Severity axis.
    pub severities: Vec<f64>,
    /// Duration axis, in ticks.
    pub duration_ticks: Vec<u64>,
}

impl Default for IncidentSweep {
    fn default() -> Self {
        Self {
            kind: IncidentKind::Closure,
            target_link: 0,
            onset_tick: 0,
            severities: Vec::new(),
            duration_ticks: Vec::new(),
        }
    }
}

impl IncidentSweep {
    /// Is the sweep grid non-empty?
    pub fn is_active(&self) -> bool {
        !self.severities.is_empty() && !self.duration_ticks.is_empty()
    }

    /// Axis validation shared by parse-time and in-code construction.
    pub fn validate(&self) -> Result<(), PlanError> {
        for &s in &self.severities {
            if !(s > 0.0 && s <= 1.0) {
                return Err(PlanError::new(format!(
                    "network sweep severity {s} is not in (0, 1]"
                )));
            }
        }
        for &d in &self.duration_ticks {
            if d == 0 {
                return Err(PlanError::new(
                    "network sweep durations must be >= 1 tick".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Expands the grid into one scheduled incident per `(severity,
    /// duration)` point, in row-major severity-then-duration order.
    pub fn points(&self) -> Vec<ScheduledIncident> {
        let mut out = Vec::with_capacity(self.severities.len() * self.duration_ticks.len());
        for &severity in &self.severities {
            for &duration_ticks in &self.duration_ticks {
                out.push(ScheduledIncident {
                    kind: self.kind,
                    target: IncidentTarget::Link(roadnet::LinkId(self.target_link as usize)),
                    onset_tick: self.onset_tick,
                    duration_ticks,
                    severity,
                });
            }
        }
        out
    }
}

/// Layer 4 of a [`crate::FaultPlan`]: the declarative incident timeline
/// plus the sweep grid.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkFaults {
    /// The fixed incident timeline, one entry per `[[network.incident]]`.
    pub incidents: Vec<IncidentSpec>,
    /// The `[network]` severity × duration sweep template.
    pub sweep: IncidentSweep,
}

impl NetworkFaults {
    /// Is any network fault actually enabled?
    pub fn is_active(&self) -> bool {
        !self.incidents.is_empty() || self.sweep.is_active()
    }

    /// Plan-level validation of every incident and the sweep axes.
    pub fn validate(&self) -> Result<(), PlanError> {
        for inc in &self.incidents {
            inc.validate()?;
        }
        self.sweep.validate()
    }

    /// Builds the simulator schedule from the fixed timeline. Index-range
    /// validation against a concrete network happens when the schedule is
    /// attached to a simulation.
    pub fn schedule(&self) -> Result<IncidentSchedule, PlanError> {
        let mut scheduled = Vec::with_capacity(self.incidents.len());
        for inc in &self.incidents {
            scheduled.push(inc.scheduled()?);
        }
        Ok(IncidentSchedule::new(scheduled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(link: Option<u64>, node: Option<u64>) -> IncidentSpec {
        IncidentSpec {
            kind: IncidentKind::Closure,
            link,
            node,
            onset_tick: 10,
            duration_ticks: 20,
            severity: 1.0,
        }
    }

    #[test]
    fn exactly_one_target_is_required() {
        assert!(spec(Some(1), None).validate().is_ok());
        assert!(spec(None, Some(2)).validate().is_ok());
        assert!(spec(Some(1), Some(2)).validate().is_err());
        assert!(spec(None, None).validate().is_err());
    }

    #[test]
    fn schedule_converts_targets_and_sorts() {
        let nf = NetworkFaults {
            incidents: vec![
                IncidentSpec {
                    onset_tick: 30,
                    ..spec(Some(4), None)
                },
                IncidentSpec {
                    kind: IncidentKind::SignalOutage,
                    onset_tick: 5,
                    ..spec(None, Some(2))
                },
            ],
            sweep: IncidentSweep::default(),
        };
        let sched = nf.schedule().unwrap();
        assert_eq!(sched.len(), 2);
        // Canonical ordering: onset first.
        assert_eq!(sched.incidents()[0].onset_tick, 5);
        assert_eq!(
            sched.incidents()[0].target,
            IncidentTarget::Node(roadnet::NodeId(2))
        );
        assert_eq!(
            sched.incidents()[1].target,
            IncidentTarget::Link(roadnet::LinkId(4))
        );
    }

    #[test]
    fn sweep_expands_the_full_grid() {
        let sweep = IncidentSweep {
            kind: IncidentKind::CapacityDrop,
            target_link: 3,
            onset_tick: 8,
            severities: vec![0.3, 0.9],
            duration_ticks: vec![10, 40, 90],
        };
        assert!(sweep.is_active());
        assert!(sweep.validate().is_ok());
        let pts = sweep.points();
        assert_eq!(pts.len(), 6);
        assert!(pts
            .iter()
            .all(|p| p.target == IncidentTarget::Link(roadnet::LinkId(3)) && p.onset_tick == 8));
        assert_eq!(pts[0].severity, 0.3);
        assert_eq!(pts[0].duration_ticks, 10);
        assert_eq!(pts[5].severity, 0.9);
        assert_eq!(pts[5].duration_ticks, 90);
    }

    #[test]
    fn sweep_axis_values_are_validated() {
        let bad = IncidentSweep {
            severities: vec![1.5],
            duration_ticks: vec![10],
            ..IncidentSweep::default()
        };
        assert!(bad.validate().is_err());
        let bad = IncidentSweep {
            severities: vec![0.5],
            duration_ticks: vec![0],
            ..IncidentSweep::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn inactive_by_default() {
        assert!(!NetworkFaults::default().is_active());
        assert!(NetworkFaults::default().validate().is_ok());
        assert!(NetworkFaults::default().schedule().unwrap().is_empty());
    }
}
