//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`):
//! the item is parsed with a small hand-rolled walker and the impls are
//! emitted as source strings. Supported shapes — the ones this workspace
//! uses:
//!
//! * structs with named fields, honouring `#[serde(skip)]` and
//!   `#[serde(default)]` field attributes;
//! * single-field tuple structs (newtypes), with or without
//!   `#[serde(transparent)]` — both serialize as the inner value;
//! * enums whose variants are all unit variants (externally tagged as a
//!   plain string, which matches serde_json for unit variants).
//!
//! Anything else panics at expansion time with a clear message so the gap
//! is obvious rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    skip: bool,
    default: bool,
    transparent: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Consumes leading attributes from `toks[*pos]`, folding any
/// `#[serde(...)]` flags into the returned set.
fn take_attrs(toks: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    while *pos < toks.len() {
        let TokenTree::Punct(p) = &toks[*pos] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = toks.get(*pos + 1) else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(head)) = inner.first() {
            if head.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(flag) = t {
                            match flag.to_string().as_str() {
                                "skip" => out.skip = true,
                                "default" => out.default = true,
                                "transparent" => out.transparent = true,
                                other => panic!(
                                    "serde stand-in derive: unsupported attribute `{other}` \
                                     (supported: skip, default, transparent)"
                                ),
                            }
                        }
                    }
                }
            }
        }
        *pos += 2;
    }
    out
}

/// Parses the derive input into one of the supported item shapes.
fn parse_item(input: TokenStream) -> (Item, SerdeAttrs) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let container_attrs = take_attrs(&toks, &mut pos);

    // Skip visibility and any other modifiers until `struct` / `enum`.
    let mut kind = None;
    while pos < toks.len() {
        if let TokenTree::Ident(id) = &toks[pos] {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kind = Some(s);
                pos += 1;
                break;
            }
        }
        pos += 1;
    }
    let kind = kind.expect("serde stand-in derive: expected `struct` or `enum`");

    let name = match &toks[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected item name, found {other}"),
    };
    pos += 1;

    if let Some(TokenTree::Punct(p)) = toks.get(pos) {
        if p.as_char() == '<' {
            panic!("serde stand-in derive: generic types are not supported ({name})");
        }
    }

    let body = match toks.get(pos) {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde stand-in derive: expected item body for {name}, found {other:?}"),
    };

    let item = if kind == "struct" {
        match body.delimiter() {
            Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(body.stream()),
            },
            Delimiter::Parenthesis => {
                let n_fields = count_tuple_fields(body.stream());
                if n_fields != 1 {
                    panic!(
                        "serde stand-in derive: only single-field tuple structs are supported \
                         ({name} has {n_fields})"
                    );
                }
                Item::NewtypeStruct { name }
            }
            _ => panic!("serde stand-in derive: unsupported struct body for {name}"),
        }
    } else {
        Item::UnitEnum {
            variants: parse_unit_variants(body.stream(), &name),
            name,
        }
    };
    (item, container_attrs)
}

/// Parses `a: T, b: U, ...` with attributes, returning names + attrs.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < toks.len() {
        let attrs = take_attrs(&toks, &mut pos);
        // Skip visibility (`pub`, `pub(crate)`, ...).
        while let Some(TokenTree::Ident(id)) = toks.get(pos) {
            if id.to_string() == "pub" {
                pos += 1;
                if let Some(TokenTree::Group(g)) = toks.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1;
                    }
                }
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = toks.get(pos) else {
            break;
        };
        fields.push(Field {
            name: id.to_string(),
            attrs,
        });
        pos += 1;
        // Expect `:`, then consume the type up to a top-level comma
        // (tracking `<`/`>` depth — angle brackets are punct, not groups).
        let mut angle_depth: i32 = 0;
        while pos < toks.len() {
            if let TokenTree::Punct(p) = &toks[pos] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
    }
    fields
}

/// Counts comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut n = 0;
    let mut saw_any = false;
    let mut angle_depth: i32 = 0;
    for t in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => n += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        n + 1
    } else {
        0
    }
}

/// Parses enum variants, requiring all of them to be unit variants.
fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < toks.len() {
        let _attrs = take_attrs(&toks, &mut pos);
        let Some(TokenTree::Ident(id)) = toks.get(pos) else {
            break;
        };
        variants.push(id.to_string());
        pos += 1;
        match toks.get(pos) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                pos += 1;
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde stand-in derive: enum {enum_name} has a data-carrying variant, \
                 which is not supported"
            ),
            Some(other) => {
                panic!("serde stand-in derive: unexpected token {other} in enum {enum_name}")
            }
        }
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::value::Value::Obj(fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}\n"
        ),
        Item::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!("{name}::{v} => \"{v}\",\n"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Str(::std::string::String::from(match self {{\n{arms}}}))\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let n = &f.name;
                if f.attrs.skip {
                    inits.push_str(&format!("{n}: ::std::default::Default::default(),\n"));
                } else if f.attrs.default {
                    inits.push_str(&format!(
                        "{n}: match __obj.iter().find(|(k, _)| k == \"{n}\") {{\n\
                             ::std::option::Option::Some((_, x)) => ::serde::Deserialize::from_value(x)?,\n\
                             ::std::option::Option::None => ::std::default::Default::default(),\n\
                         }},\n"
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: match __obj.iter().find(|(k, _)| k == \"{n}\") {{\n\
                             ::std::option::Option::Some((_, x)) => ::serde::Deserialize::from_value(x)?,\n\
                             ::std::option::Option::None => return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"missing field `{n}` in {name}\")),\n\
                         }},\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = match v {{\n\
                             ::serde::value::Value::Obj(m) => m,\n\
                             _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected object for {name}\")),\n\
                         }};\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}\n"
        ),
        Item::UnitEnum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::value::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => ::std::result::Result::Err(::serde::Error::custom(format!(\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// Derives the stand-in `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (item, _attrs) = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde stand-in derive: generated Serialize impl parses")
}

/// Derives the stand-in `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (item, _attrs) = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde stand-in derive: generated Deserialize impl parses")
}
