//! Offline API-subset stand-in for the `rayon` crate.
//!
//! Implements the surface the workspace uses — thread pools with
//! `install`, `current_num_threads`, and parallel iterators over ranges
//! and slices supporting `map`/`enumerate`/`for_each`/`collect`, plus
//! `par_chunks_mut` — on top of `std::thread::scope`. Work is split into
//! one contiguous block per worker thread; a pool of size 1 (and the
//! degenerate single-item case) runs inline on the calling thread.
//!
//! Like real rayon, `ThreadPool::install` scopes the worker count for
//! parallel iterators run inside the closure, and `build_global` pins the
//! default pool size for the whole process.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel iterators will use on this thread:
/// the innermost `ThreadPool::install` scope if any, else the global pool
/// size (`ThreadPoolBuilder::build_global`), else the machine parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed != 0 {
        return installed;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error building a thread pool (only occurs when the global pool is
/// initialised twice, mirroring rayon's contract).
#[derive(Debug)]
pub struct ThreadPoolBuildError(String);

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for thread pools.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; 0 means machine parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a scoped pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }

    /// Initialises the process-global pool size. Errors if called twice.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        match GLOBAL_THREADS.compare_exchange(0, n, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => Ok(()),
            Err(_) => Err(ThreadPoolBuildError(
                "the global thread pool has already been initialized".into(),
            )),
        }
    }
}

/// A pool of worker threads (logical: workers are spawned per operation).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count in effect for any parallel
    /// iterators executed inside it.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        INSTALLED_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let out = op();
            c.set(prev);
            out
        })
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Core executor: evaluates `f(0..len)` across the current worker count,
/// one contiguous index block per worker, results in index order.
fn execute<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let chunk = len.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, block) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = t * chunk;
                for (off, slot) in block.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect()
}

/// Parallel iterators.
pub mod iter {
    use super::execute;
    use std::ops::Range;

    /// A finite, random-access parallel iterator ("indexed pull" model:
    /// every adapter exposes its length and a pure per-index getter, and
    /// terminal operations fan the index space out across workers).
    pub trait ParallelIterator: Sized + Sync {
        /// Item type.
        type Item: Send;

        /// Number of items.
        fn par_len(&self) -> usize;

        /// Produces the `i`-th item.
        fn par_get(&self, i: usize) -> Self::Item;

        /// Maps each item through `f`.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { inner: self, f }
        }

        /// Pairs each item with its index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { inner: self }
        }

        /// Runs `f` on every item in parallel.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            let _ = execute(self.par_len(), |i| f(self.par_get(i)));
        }

        /// Collects all items in index order.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_ordered(execute(self.par_len(), |i| self.par_get(i)))
        }
    }

    /// Conversion into a parallel iterator (owned).
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Conversion into a borrowing parallel iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Iterates over `&self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// Conversion into a mutably borrowing parallel iterator.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Iterates over `&mut self`.
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    /// Collection from an ordered item vector.
    pub trait FromParallelIterator<T> {
        /// Builds the collection.
        fn from_ordered(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered(items: Vec<T>) -> Self {
            items
        }
    }

    impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
        fn from_ordered(items: Vec<Result<T, E>>) -> Self {
            items.into_iter().collect()
        }
    }

    /// Parallel iterator over a `Range<usize>`.
    pub struct RangeIter {
        start: usize,
        len: usize,
    }

    impl ParallelIterator for RangeIter {
        type Item = usize;
        fn par_len(&self) -> usize {
            self.len
        }
        fn par_get(&self, i: usize) -> usize {
            self.start + i
        }
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        type Iter = RangeIter;
        fn into_par_iter(self) -> RangeIter {
            RangeIter {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            }
        }
    }

    /// Parallel iterator over slice elements.
    pub struct SliceIter<'a, T: Sync> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;
        fn par_len(&self) -> usize {
            self.slice.len()
        }
        fn par_get(&self, i: usize) -> &'a T {
            &self.slice[i]
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;
        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    /// Parallel iterator over mutable slice elements.
    pub struct SliceIterMut<'a, T: Send> {
        ptr: *mut T,
        len: usize,
        _marker: std::marker::PhantomData<&'a mut [T]>,
    }

    // SAFETY: the iterator only hands out disjoint `&mut` borrows (terminal
    // operations call `par_get` exactly once per index), so sharing the
    // raw base pointer across workers is sound for `T: Send`.
    unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}

    impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
        type Item = &'a mut T;
        fn par_len(&self) -> usize {
            self.len
        }
        fn par_get(&self, i: usize) -> &'a mut T {
            assert!(i < self.len);
            // SAFETY: `i` is in bounds and every index is produced at most
            // once per terminal operation, so the `&mut` never aliases.
            unsafe { &mut *self.ptr.add(i) }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = SliceIterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
            SliceIterMut {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = SliceIterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
            self.as_mut_slice().par_iter_mut()
        }
    }

    /// `map` adapter.
    pub struct Map<I, F> {
        inner: I,
        f: F,
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync,
    {
        type Item = R;
        fn par_len(&self) -> usize {
            self.inner.par_len()
        }
        fn par_get(&self, i: usize) -> R {
            (self.f)(self.inner.par_get(i))
        }
    }

    /// `enumerate` adapter.
    pub struct Enumerate<I> {
        inner: I,
    }

    impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
        type Item = (usize, I::Item);
        fn par_len(&self) -> usize {
            self.inner.par_len()
        }
        fn par_get(&self, i: usize) -> (usize, I::Item) {
            (i, self.inner.par_get(i))
        }
    }
}

/// Parallel operations on mutable slices.
pub mod slice {
    /// Extension trait adding `par_chunks_mut`.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits into chunks of `size` processed in parallel.
        fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
            assert!(size > 0, "chunk size must be positive");
            ChunksMut { slice: self, size }
        }
    }

    /// Parallel mutable-chunk iterator (terminal ops only).
    pub struct ChunksMut<'a, T: Send> {
        slice: &'a mut [T],
        size: usize,
    }

    /// `enumerate` over mutable chunks.
    pub struct EnumerateChunksMut<'a, T: Send> {
        inner: ChunksMut<'a, T>,
    }

    impl<'a, T: Send> ChunksMut<'a, T> {
        /// Pairs each chunk with its index.
        pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
            EnumerateChunksMut { inner: self }
        }

        fn run<F>(self, f: F)
        where
            F: Fn(usize, &mut [T]) + Sync,
        {
            let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.size).collect();
            let n = chunks.len();
            let threads = super::current_num_threads().min(n.max(1));
            if threads <= 1 || n <= 1 {
                for (i, c) in chunks.into_iter().enumerate() {
                    f(i, c);
                }
                return;
            }
            // One contiguous block of chunks per worker.
            let mut slots: Vec<(usize, Option<&mut [T]>)> = chunks
                .into_iter()
                .enumerate()
                .map(|(i, c)| (i, Some(c)))
                .collect();
            let block = n.div_ceil(threads);
            std::thread::scope(|s| {
                for part in slots.chunks_mut(block) {
                    let f = &f;
                    s.spawn(move || {
                        for (i, c) in part.iter_mut() {
                            if let Some(chunk) = c.take() {
                                f(*i, chunk);
                            }
                        }
                    });
                }
            });
        }

        /// Runs `f` on every chunk in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            self.run(|_, c| f(c));
        }
    }

    impl<'a, T: Send> EnumerateChunksMut<'a, T> {
        /// Runs `f` on every `(index, chunk)` pair in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            self.inner.run(|i, c| f((i, c)));
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..100).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_collect_result() {
        let items = vec![1u32, 2, 3, 4];
        let ok: Result<Vec<u32>, String> =
            items.par_iter().map(|&v| Ok::<_, String>(v + 1)).collect();
        assert_eq!(ok.unwrap(), vec![2, 3, 4, 5]);
        let err: Result<Vec<u32>, String> = items
            .par_iter()
            .map(|&v| {
                if v == 3 {
                    Err("three".to_string())
                } else {
                    Ok(v)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "three");
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let mut data = vec![0.0f64; 37];
        pool.install(|| {
            data.par_chunks_mut(5)
                .enumerate()
                .for_each(|(i, chunk)| chunk.iter_mut().for_each(|v| *v = i as f64));
        });
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, (k / 5) as f64);
        }
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 7);
    }

    #[test]
    fn par_iter_mut_mutates_every_element_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut data: Vec<u64> = (0..53).collect();
        pool.install(|| data.par_iter_mut().for_each(|v| *v += 100));
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64 + 100);
        }
    }
}
