//! Offline API-subset stand-in for the `serde_json` crate.
//!
//! Works directly on the sibling serde stand-in's [`Value`] tree:
//! [`to_string`] / [`to_string_pretty`] render a value tree as JSON text,
//! [`from_str`] parses JSON text with a recursive-descent parser and then
//! rebuilds `T` via `serde::Deserialize::from_value`. Floats are written
//! with `{:?}`, which is Rust's shortest round-trip formatting, so
//! serialize → parse → deserialize is lossless for every finite `f64`
//! (non-finite floats serialize as `null`, matching upstream serde_json).

use std::fmt;
use std::fmt::Write as _;

pub use serde::value::Value;

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// --- serialization --------------------------------------------------------

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} is shortest round-trip and always keeps a decimal
                // point or exponent, so the value re-parses as a float.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- deserialization ------------------------------------------------------

/// Parses JSON text and reconstructs `T` from the resulting value tree.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's data; map lone surrogates to the
                            // replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source text.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("grid".into())),
            ("n".into(), Value::UInt(4)),
            ("scale".into(), Value::Float(0.05)),
            (
                "tags".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, -0.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Obj(vec![(
            "xs".into(),
            Value::Arr(vec![Value::UInt(1), Value::UInt(2)]),
        )]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = "line\nbreak \"quoted\" back\\slash";
        let json = to_string(&String::from(s)).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
