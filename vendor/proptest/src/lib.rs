//! Offline API-subset stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! integer/float range strategies (`0u64..1000`, `-3.0f64..3.0`),
//! `proptest::collection::vec(strategy, len)`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test's module path and name) rather than
//! an entropy source, and failing cases are reported without shrinking.
//! `.proptest-regressions` files are ignored.

/// Test-runner plumbing used by the generated test bodies.
pub mod test_runner {
    use std::fmt;

    /// Deterministic RNG driving input generation (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from a test identifier string.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name keeps streams distinct per test
            // while staying reproducible run-to-run.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed property assertion, carried out of the test body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl fmt::Display) -> Self {
            TestCaseError(msg.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of generated values.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 range strategy");
            let span = (self.end - self.start) as f64;
            let v = self.start as f64 + rng.unit_f64() * span;
            let v = v as f32;
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of a fixed length.
    pub struct VecStrategy<S> {
        elem: S,
        len: usize,
    }

    /// Generates `len`-element vectors with entries drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything tests conventionally import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples fresh inputs `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if l != r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {} (left: {:?}, right: {:?})",
                            stringify!($left),
                            stringify!($right),
                            l,
                            r
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn int_ranges_stay_in_bounds(n in 3usize..9, s in -5i64..5) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-5..5).contains(&s));
        }

        fn float_ranges_stay_in_bounds(x in -2.0f64..2.0) {
            prop_assert!((-2.0..2.0).contains(&x));
        }

        fn vecs_have_requested_length(xs in crate::collection::vec(0.0f64..1.0, 6)) {
            prop_assert_eq!(xs.len(), 6);
            prop_assert!(xs.iter().all(|&v| (0.0..1.0).contains(&v)));
        }
    }

    proptest! {
        fn default_config_runs(k in 0u32..10) {
            prop_assert!(k < 10);
        }
    }
}
