//! Offline API-subset stand-in for the `serde` crate.
//!
//! Serialization is modelled directly on a JSON-like [`value::Value`]
//! tree rather than serde's visitor architecture: `Serialize` renders a
//! value tree, `Deserialize` reads one back. The derive macros (from the
//! sibling `serde_derive` stub) cover named-field structs, newtype
//! structs, unit enums, and the `transparent` / `skip` / `default` field
//! attributes used in this workspace.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Serialization/deserialization error (message-only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// The JSON-like data model serialization goes through.
pub mod value {
    /// A JSON-like value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Signed integer (negative JSON numbers).
        Int(i64),
        /// Unsigned integer (non-negative JSON integers).
        UInt(u64),
        /// Floating-point number.
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object with insertion-ordered keys.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object entries, if this is an object.
        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(m) => Some(m),
                _ => None,
            }
        }

        /// Array elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }

        /// Member lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_obj()
                .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
        }

        /// String content, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Numeric content as `f64` (coercing integers).
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::Int(v) => Some(v as f64),
                Value::UInt(v) => Some(v as f64),
                Value::Float(v) => Some(v),
                _ => None,
            }
        }

        /// Numeric content as `u64`, if non-negative and integral.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::UInt(v) => Some(v),
                Value::Int(v) if v >= 0 => Some(v as u64),
                _ => None,
            }
        }

        /// Numeric content as `i64`.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Value::Int(v) => Some(v),
                Value::UInt(v) => i64::try_from(v).ok(),
                _ => None,
            }
        }

        /// Boolean content.
        pub fn as_bool(&self) -> Option<bool> {
            match *self {
                Value::Bool(b) => Some(b),
                _ => None,
            }
        }

        /// serde_json-compatible alias for [`Value::as_arr`].
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
    }

    impl PartialEq<f64> for Value {
        fn eq(&self, other: &f64) -> bool {
            self.as_f64() == Some(*other)
        }
    }

    impl PartialEq<&str> for Value {
        fn eq(&self, other: &&str) -> bool {
            self.as_str() == Some(*other)
        }
    }

    impl PartialEq<str> for Value {
        fn eq(&self, other: &str) -> bool {
            self.as_str() == Some(other)
        }
    }

    impl PartialEq<u64> for Value {
        fn eq(&self, other: &u64) -> bool {
            self.as_u64() == Some(*other)
        }
    }

    impl PartialEq<i64> for Value {
        fn eq(&self, other: &i64) -> bool {
            self.as_i64() == Some(*other)
        }
    }

    impl PartialEq<bool> for Value {
        fn eq(&self, other: &bool) -> bool {
            self.as_bool() == Some(*other)
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            static NULL: Value = Value::Null;
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, i: usize) -> &Value {
            static NULL: Value = Value::Null;
            self.as_arr().and_then(|a| a.get(i)).unwrap_or(&NULL)
        }
    }
}

use value::Value;

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` back from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls ------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// --- composite impls ------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_arr().ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut it = a.iter();
                Ok(($(
                    $t::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let v: Vec<f64> = Deserialize::from_value(&vec![1.0, 2.0].to_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn coercions() {
        // A float field written as an integer literal deserializes.
        assert_eq!(f64::from_value(&Value::UInt(3)).unwrap(), 3.0);
        assert_eq!(usize::from_value(&Value::Int(9)).unwrap(), 9);
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn tuples_are_arrays() {
        let t = (1u32, "x".to_string());
        let v = t.to_value();
        assert_eq!(v.as_arr().unwrap().len(), 2);
        let back: (u32, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }
}
