//! Offline API-subset stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng` (a xoshiro256++ generator seeded through
//! SplitMix64), `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods the workspace uses: `gen::<f64>()`, `gen::<bool>()`,
//! `gen_range` over integer and float ranges. Deterministic per seed;
//! streams do **not** match upstream `rand`.

use core::ops::Range;

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from raw generator output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw; bias is negligible for the spans used here.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample of a `Standard`-distributed type (`f64` in `[0,1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    #[inline]
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u = r.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }
}
