//! Offline API-subset stand-in for the `criterion` crate.
//!
//! Implements the surface this workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`, the
//! `criterion_group!` / `criterion_main!` macros, and `black_box` — with
//! plain `Instant`-based timing: a short warm-up, then `sample_size`
//! timed samples, reporting min / mean per benchmark to stdout. There is
//! no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.default_sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (upstream criterion finalizes reports here).
    pub fn finish(self) {}
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Warm-up: one untimed sample to populate caches and JIT-like effects.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed;

    // Pick an iteration count aiming at roughly 10ms per sample so very
    // fast routines are not dominated by timer resolution.
    let target = Duration::from_millis(10);
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        min = min.min(per);
        total += per;
    }
    let mean = total / samples as u32;
    println!("  {id}: min {min:?}, mean {mean:?} ({samples} samples x {iters} iters)");
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
